/**
 * @file
 * Tests for the event-driven dynamics clock: the EventClock's
 * deterministic (time, kind, seq) pop order, the engine's golden
 * parity contract (EventDriven bit-identical to EpochQuantized when
 * every change point lands on the epoch tick grid), and the sub-epoch
 * semantics the event clock adds — a flash crowd opening mid-compute
 * and expiring mid-shuffle changes delivery exactly as hand-computed.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/error.hh"
#include "experiments/testbed.hh"
#include "gda/engine.hh"
#include "gda/event_clock.hh"
#include "scenario/library.hh"
#include "scenario/scenario.hh"

using namespace wanify;
using namespace wanify::experiments;
using gda::ClockEvent;
using gda::ClockEventKind;
using gda::EventClock;

namespace {

/** Spreads every DC's input uniformly over all DCs — every ordered
 *  pair carries shuffle traffic, the densest mesh a placement can
 *  produce. */
class SpreadScheduler : public gda::Scheduler
{
  public:
    std::string name() const override { return "spread"; }

    Matrix<Bytes>
    placeStage(const gda::StageContext &ctx) override
    {
        const std::size_t n = ctx.topo->dcCount();
        Matrix<Bytes> a = Matrix<Bytes>::square(n, 0.0);
        for (net::DcId i = 0; i < n; ++i)
            for (net::DcId j = 0; j < n; ++j)
                a.at(i, j) =
                    ctx.inputByDc[i] / static_cast<double>(n);
        return a;
    }
};

/** Stage 0 keeps data in place; later stages route everything to
 *  DC 1 — a two-stage job whose only WAN transfer is (0, 1). */
class RouteToOneScheduler : public gda::Scheduler
{
  public:
    std::string name() const override { return "route-to-one"; }

    Matrix<Bytes>
    placeStage(const gda::StageContext &ctx) override
    {
        const std::size_t n = ctx.topo->dcCount();
        Matrix<Bytes> a = Matrix<Bytes>::square(n, 0.0);
        for (net::DcId i = 0; i < n; ++i)
            a.at(i, ctx.stageIndex == 0 ? i : 1) = ctx.inputByDc[i];
        return a;
    }
};

/** Dynamics consisting of exactly one flash-crowd burst: no factor
 *  windows, just a background flow with hard start/end instants. */
class OneBurst : public scenario::Dynamics
{
  public:
    explicit OneBurst(scenario::BurstFlow flow) : flow_(flow) {}

    std::size_t dcCount() const override { return 0; }

    void applyAt(net::NetworkSim &, Seconds) const override {}

    std::vector<scenario::BurstFlow>
    burstsIn(Seconds t0, Seconds t1) const override
    {
        if (flow_.start > t0 && flow_.start <= t1)
            return {flow_};
        return {};
    }

    void
    changePointsIn(Seconds t0, Seconds t1,
                   std::vector<scenario::ChangePoint> &out)
        const override
    {
        if (flow_.start > t0 && flow_.start <= t1)
            out.push_back(
                {flow_.start, scenario::ChangeKind::BurstStart});
        const Seconds end = flow_.start + flow_.duration;
        if (end > t0 && end <= t1)
            out.push_back({end, scenario::ChangeKind::BurstEnd});
    }

  private:
    scenario::BurstFlow flow_;
};

/** Bitwise comparison of two engine results (gtest EXPECT_EQ on
 *  doubles is exact ==). */
void
expectIdenticalResults(const gda::QueryResult &a,
                       const gda::QueryResult &b)
{
    EXPECT_EQ(a.latency, b.latency);
    EXPECT_EQ(a.cost.total(), b.cost.total());
    EXPECT_EQ(a.minObservedBw, b.minObservedBw);
    ASSERT_EQ(a.stages.size(), b.stages.size());
    for (std::size_t s = 0; s < a.stages.size(); ++s) {
        EXPECT_EQ(a.stages[s].start, b.stages[s].start);
        EXPECT_EQ(a.stages[s].transferEnd, b.stages[s].transferEnd);
        EXPECT_EQ(a.stages[s].end, b.stages[s].end);
        EXPECT_EQ(a.stages[s].wanBytes, b.stages[s].wanBytes);
        EXPECT_EQ(a.stages[s].minPairBw, b.stages[s].minPairBw);
    }
    const std::size_t n = a.wanBytesByPair.rows();
    ASSERT_EQ(b.wanBytesByPair.rows(), n);
    for (net::DcId i = 0; i < n; ++i)
        for (net::DcId j = 0; j < n; ++j)
            EXPECT_EQ(a.wanBytesByPair.at(i, j),
                      b.wanBytesByPair.at(i, j))
                << "pair " << i << "->" << j;
}

} // namespace

// ---- EventClock ------------------------------------------------------------

TEST(EventClock, PopsByTimeFirst)
{
    EventClock clock;
    clock.push(3.0, ClockEventKind::EpochTick);
    clock.push(1.0, ClockEventKind::BurstEdge);
    clock.push(2.0, ClockEventKind::StageGuard);
    EXPECT_EQ(clock.size(), 3u);
    EXPECT_EQ(clock.pop().time, 1.0);
    EXPECT_EQ(clock.pop().time, 2.0);
    EXPECT_EQ(clock.pop().time, 3.0);
    EXPECT_TRUE(clock.empty());
}

TEST(EventClock, SameTimeCollisionsPopInKindThenSeqOrder)
{
    // Collision-heavy: every kind lands on the same instant, pushed
    // in scrambled order and with same-kind duplicates. The pop
    // order must be the documented (kind, then push sequence) — the
    // guard before the tick, the tick before any dynamics edge,
    // duplicates in push order.
    EventClock clock;
    const Seconds t = 42.0;
    clock.push(t, ClockEventKind::BurstEdge);      // seq 0
    clock.push(t, ClockEventKind::DynamicsChange); // seq 1
    clock.push(t, ClockEventKind::EpochTick);      // seq 2
    clock.push(t, ClockEventKind::BurstEdge);      // seq 3
    clock.push(t, ClockEventKind::StageGuard);     // seq 4
    clock.push(t, ClockEventKind::DynamicsChange); // seq 5
    clock.push(t, ClockEventKind::EpochTick);      // seq 6

    const std::vector<std::pair<ClockEventKind, std::uint64_t>>
        expected = {
            {ClockEventKind::StageGuard, 4},
            {ClockEventKind::EpochTick, 2},
            {ClockEventKind::EpochTick, 6},
            {ClockEventKind::DynamicsChange, 1},
            {ClockEventKind::DynamicsChange, 5},
            {ClockEventKind::BurstEdge, 0},
            {ClockEventKind::BurstEdge, 3},
        };
    for (const auto &[kind, seq] : expected) {
        const ClockEvent ev = clock.pop();
        EXPECT_EQ(ev.time, t);
        EXPECT_EQ(ev.kind, kind);
        EXPECT_EQ(ev.seq, seq);
    }
    EXPECT_TRUE(clock.empty());
}

TEST(EventClock, InterleavedPushesKeepStableOrder)
{
    // The engine's steady state: pop a tick, push the next one. A
    // later push at an instant already queued must pop after the
    // earlier same-(time, kind) event, never before it.
    EventClock clock;
    clock.push(5.0, ClockEventKind::DynamicsChange); // seq 0
    clock.push(1.0, ClockEventKind::EpochTick);      // seq 1
    EXPECT_EQ(clock.pop().time, 1.0);
    clock.push(5.0, ClockEventKind::DynamicsChange); // seq 2
    clock.push(5.0, ClockEventKind::EpochTick);      // seq 3

    ClockEvent ev = clock.pop();
    EXPECT_EQ(ev.kind, ClockEventKind::EpochTick);
    ev = clock.pop();
    EXPECT_EQ(ev.kind, ClockEventKind::DynamicsChange);
    EXPECT_EQ(ev.seq, 0u);
    ev = clock.pop();
    EXPECT_EQ(ev.seq, 2u);
    EXPECT_TRUE(clock.empty());
}

TEST(EventClock, SeqCounterSurvivesClear)
{
    EventClock clock;
    clock.push(1.0, ClockEventKind::EpochTick); // seq 0
    clock.clear();
    EXPECT_TRUE(clock.empty());
    clock.push(1.0, ClockEventKind::EpochTick); // seq 1
    EXPECT_EQ(clock.pop().seq, 1u);
}

TEST(EventClock, RejectsNanAndEmptyAccess)
{
    EventClock clock;
    EXPECT_THROW(clock.push(std::nan(""), ClockEventKind::EpochTick),
                 FatalError);
    EXPECT_THROW(clock.top(), PanicError);
    EXPECT_THROW(clock.pop(), PanicError);
}

// ---- engine golden parity --------------------------------------------------

TEST(EngineEventClock, BitIdenticalToEpochClockOnScenarioLibrary)
{
    // Every library scenario scripts its events at integer seconds
    // with no start jitter, and a single-stage job with wanify unset
    // runs its shuffle from t = 0 with a 1-second epoch — so every
    // discrete change point lands exactly on the tick grid. There the
    // event clock's extra wake-ups must be idempotent no-ops and the
    // two clock modes bit-identical, OU fluctuation included.
    const auto topo = workerCluster(8, 1);
    const std::size_t n = 8;

    gda::JobSpec job;
    job.name = "mesh-shuffle";
    job.stages.push_back({"shuffle", 1.0, 0.0, true});
    job.inputBytes = units::gigabytes(16.0) * n;
    const std::vector<Bytes> input(n, units::gigabytes(16.0));

    bool sawTraffic = false;
    for (const std::string &name : scenario::libraryScenarioNames()) {
        SCOPED_TRACE(name);
        const scenario::ScenarioTimeline timeline(
            scenario::libraryScenario(name), n, 77);

        SpreadScheduler spread;
        gda::RunOptions opts;
        opts.schedulerBw = Matrix<Mbps>::square(n, 400.0);
        opts.dynamics = &timeline;

        gda::Engine epochEngine(topo, defaultSimConfig(), 1234);
        gda::Engine eventEngine(topo, defaultSimConfig(), 1234);
        opts.clock = gda::ClockMode::EpochQuantized;
        const auto a = epochEngine.run(job, input, spread, opts);
        opts.clock = gda::ClockMode::EventDriven;
        const auto b = eventEngine.run(job, input, spread, opts);

        expectIdenticalResults(a, b);
        sawTraffic = sawTraffic || a.minObservedBw > 0.0;
    }
    EXPECT_TRUE(sawTraffic);
}

TEST(EngineEventClock, EventModeDeterministicAcrossRuns)
{
    const auto topo = workerCluster(8, 1);
    const std::size_t n = 8;
    const scenario::ScenarioTimeline timeline(
        scenario::libraryScenario("cascading"), n, 9);

    gda::JobSpec job;
    job.name = "mesh-shuffle";
    job.stages.push_back({"shuffle", 1.0, 0.0, true});
    job.inputBytes = units::gigabytes(16.0) * n;
    const std::vector<Bytes> input(n, units::gigabytes(16.0));

    SpreadScheduler spread;
    gda::RunOptions opts;
    opts.schedulerBw = Matrix<Mbps>::square(n, 400.0);
    opts.dynamics = &timeline;
    opts.clock = gda::ClockMode::EventDriven;

    gda::Engine engineA(topo, defaultSimConfig(), 55);
    gda::Engine engineB(topo, defaultSimConfig(), 55);
    const auto a = engineA.run(job, input, spread, opts);
    const auto b = engineB.run(job, input, spread, opts);
    expectIdenticalResults(a, b);
    EXPECT_GT(a.latency, 0.0);
}

// ---- sub-epoch burst semantics ---------------------------------------------

TEST(EngineEventClock, MidStageBurstChangesDeliveryAsHandComputed)
{
    // A flash crowd opens mid-way through stage 1's compute phase and
    // expires mid-way between two epoch ticks of stage 2's shuffle.
    // The event clock must open it at its true start (inside the
    // compute window, where the epoch clock structurally cannot) and
    // close it at its true end, so stage 2's only transfer runs at
    // the hand-computed shared rate until exactly the burst end and
    // at its solo rate afterwards. The epoch clock keeps the burst
    // open until the next tick and must finish measurably later.
    const auto topo = workerCluster(2, 1);
    net::NetworkSimConfig simCfg = quietSimConfig();

    // Solo the job transfer is connection-capped; against the burst
    // it gets a 1 / (1 + cb) weighted share of the binding shared
    // resource — the VM WAN cap, shrunk by the solver's
    // oversubscription-waste penalty because the two bundles'
    // aggregate desire exceeds the NIC (both flows ride the same
    // VMs and the same pair, so their per-connection weights are
    // identical and shares split exactly by connection count).
    const int cb = 3; // burst connections; job uses 1
    const Mbps cc = topo.connCap(0, 1);
    const Mbps path = topo.pathCap(0, 1);
    const auto &vmType = topo.vm(topo.dc(0).vms.front()).type;
    const auto &sc = simCfg.solver;
    const Mbps desire =
        net::bundleCap(1, cc, sc) + net::bundleCap(cb, cc, sc);
    double penalty = 1.0;
    if (desire > vmType.nicCapMbps)
        penalty +=
            sc.oversubAlpha * (desire / vmType.nicCapMbps - 1.0);
    const Mbps shared =
        std::min(path, vmType.wanCapMbps / penalty);
    const Mbps rShared = shared / (1.0 + static_cast<double>(cb));
    ASSERT_LT(cc, shared);  // alone: rate = connCap
    ASSERT_LT(rShared, cc); // burst genuinely slows the job
    ASSERT_GT(vmType.nicCapMbps / penalty, shared); // NIC never binds

    // Stage 1: 400 MB resident at DC 0, computed in place for 7.3 s
    // (workPerMb tuned against t2.medium's 2.0 units/s). Stage 2:
    // the full 400 MB shuffles 0 -> 1. Burst: starts at 4.6 (inside
    // stage 1's compute), ends at 9.8 = stage-2 start + 2.5 (between
    // the ticks at +2 and +3).
    const Bytes inputBytes = units::megabytes(400.0);
    const Seconds computeEnd = 7.3;
    const double workPerMb =
        computeEnd * 2.0 / units::toMegabytes(inputBytes);
    scenario::BurstFlow burst;
    burst.start = 4.6;
    burst.duration = 5.2; // ends at 9.8
    burst.src = 0;
    burst.dst = 1;
    burst.connections = cb;
    const Seconds burstEnd = burst.start + burst.duration;
    const OneBurst dynamics(burst);

    gda::JobSpec job;
    job.name = "burst-probe";
    job.stages.push_back({"ingest", 1.0, workPerMb, true});
    job.stages.push_back({"reduce", 1.0, 0.0, true});
    job.inputBytes = inputBytes;
    const std::vector<Bytes> input = {inputBytes, 0.0};

    RouteToOneScheduler route;
    gda::RunOptions opts;
    opts.schedulerBw = Matrix<Mbps>::square(2, 400.0);
    opts.dynamics = &dynamics;

    opts.clock = gda::ClockMode::EventDriven;
    gda::Engine eventEngine(topo, simCfg, 3);
    const auto ev = eventEngine.run(job, input, route, opts);
    opts.clock = gda::ClockMode::EpochQuantized;
    gda::Engine epochEngine(topo, simCfg, 3);
    const auto ep = epochEngine.run(job, input, route, opts);

    ASSERT_EQ(ev.stages.size(), 2u);
    ASSERT_EQ(ep.stages.size(), 2u);
    EXPECT_NEAR(ev.stages[1].start, computeEnd, 1e-9);
    EXPECT_NEAR(ep.stages[1].start, computeEnd, 1e-9);

    // Event clock: shared rate over (start, burstEnd], solo connCap
    // for the remainder — piecewise-exact delivery.
    const Seconds sharedWindow = burstEnd - ev.stages[1].start;
    const Bytes atBurstEnd = units::bytesAtRate(rShared, sharedWindow);
    ASSERT_GT(inputBytes, atBurstEnd); // still in flight at the end
    const Seconds eventExpected =
        burstEnd + (inputBytes - atBurstEnd) * units::kBitsPerByte /
                       (cc * units::kBitsPerMegabit);
    EXPECT_NEAR(ev.stages[1].transferEnd, eventExpected, 2e-3);

    // Epoch clock: the burst stays open until the first tick at or
    // after its end — a full half-second of extra contention.
    const Seconds epochClose = ep.stages[1].start + 3.0;
    const Bytes atEpochClose =
        units::bytesAtRate(rShared, epochClose - ep.stages[1].start);
    ASSERT_GT(inputBytes, atEpochClose);
    const Seconds epochExpected =
        epochClose + (inputBytes - atEpochClose) *
                         units::kBitsPerByte /
                         (cc * units::kBitsPerMegabit);
    EXPECT_NEAR(ep.stages[1].transferEnd, epochExpected, 2e-3);
    EXPECT_GT(ep.stages[1].transferEnd - ev.stages[1].transferEnd,
              0.1);

    // Burst traffic is other tenants' data: the query is billed its
    // own 400 MB on (0, 1) in both modes, nothing more.
    EXPECT_NEAR(ev.wanBytesByPair.at(0, 1), inputBytes,
                inputBytes * 1e-6);
    EXPECT_NEAR(ep.wanBytesByPair.at(0, 1), inputBytes,
                inputBytes * 1e-6);
}
