/**
 * @file
 * Tests for fault injection and recovery: the FaultPlan time algebra,
 * the retry/backoff policy, the predictor degradation ladder, the
 * engine's abort → retry → replan pipeline, blackout deferral, the
 * ladder firing end to end under gauge outages, fault scenarios in
 * the library and the CSV trace medium, and the serve layer's
 * query-granularity kill / requeue / blackout-admission recovery.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "common/error.hh"
#include "experiments/runner.hh"
#include "experiments/predictor_factory.hh"
#include "experiments/testbed.hh"
#include "fault/fault.hh"
#include "gda/engine.hh"
#include "scenario/library.hh"
#include "scenario/scenario.hh"
#include "scenario/trace.hh"
#include "sched/locality.hh"
#include "sched/tetrium.hh"
#include "serve/service.hh"
#include "storage/hdfs.hh"
#include "workloads/terasort.hh"
#include "workloads/tpcds.hh"

using namespace wanify;
using namespace wanify::fault;

namespace {

/** A temp file path unique to this test binary. */
std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "wanify_fault_" + name;
}

} // namespace

// ---- FaultPlan time algebra -------------------------------------------------

TEST(FaultPlan, CompilesDeterministicallyWithSeededJitter)
{
    std::vector<FaultEvent> evs;
    FaultEvent a;
    a.kind = FaultKind::TransferAbort;
    a.time = 10.0;
    a.startJitter = 5.0;
    evs.push_back(a);
    a.time = 40.0;
    evs.push_back(a);

    const FaultPlan p1(evs, 4, 99);
    const FaultPlan p2(evs, 4, 99);
    ASSERT_EQ(p1.events().size(), 2u);
    for (std::size_t k = 0; k < 2; ++k) {
        EXPECT_DOUBLE_EQ(p1.events()[k].start, p2.events()[k].start);
        EXPECT_GE(p1.events()[k].start, evs[k].time);
        EXPECT_LT(p1.events()[k].start, evs[k].time + 5.0);
    }
    // A different seed draws different jitter for at least one event.
    const FaultPlan p3(evs, 4, 100);
    EXPECT_TRUE(p3.events()[0].start != p1.events()[0].start ||
                p3.events()[1].start != p1.events()[1].start);
}

TEST(FaultPlan, StartsInWindowAreSortedAndHalfOpen)
{
    std::vector<FaultEvent> evs;
    FaultEvent a;
    a.kind = FaultKind::TransferAbort;
    a.time = 20.0;
    evs.push_back(a);
    a.time = 10.0;
    evs.push_back(a);
    const FaultPlan plan(evs, 4, 1);

    std::vector<std::size_t> hits;
    plan.startsIn(-1.0, 30.0, hits);
    ASSERT_EQ(hits.size(), 2u);
    // Sorted by start time, not by spec order.
    EXPECT_EQ(hits[0], 1u);
    EXPECT_EQ(hits[1], 0u);

    hits.clear();
    plan.startsIn(10.0, 20.0, hits); // (10, 20]: 10 excluded
    ASSERT_EQ(hits.size(), 1u);
    EXPECT_EQ(hits[0], 0u);

    std::vector<Seconds> edges;
    plan.edgesIn(-1.0, 30.0, edges);
    std::sort(edges.begin(), edges.end());
    ASSERT_GE(edges.size(), 2u);
    EXPECT_DOUBLE_EQ(edges.front(), 10.0);
}

TEST(FaultPlan, BlackoutWindowsAndClearTimeChaining)
{
    std::vector<FaultEvent> evs;
    FaultEvent b;
    b.kind = FaultKind::DcBlackout;
    b.dc = 1;
    b.time = 10.0;
    b.duration = 20.0;
    evs.push_back(b);
    b.dc = 2;
    b.time = 25.0;
    b.duration = 15.0; // [25, 40): overlaps the tail of DC 1's window
    evs.push_back(b);
    const FaultPlan plan(evs, 4, 1);

    EXPECT_FALSE(plan.blackoutAt(1, 9.9));
    EXPECT_TRUE(plan.blackoutAt(1, 10.0));
    EXPECT_TRUE(plan.blackoutAt(1, 29.9));
    EXPECT_FALSE(plan.blackoutAt(1, 30.0));
    EXPECT_FALSE(plan.blackoutAt(0, 15.0));
    EXPECT_TRUE(plan.anyBlackoutAt(15.0));
    EXPECT_FALSE(plan.anyBlackoutAt(50.0));

    EXPECT_TRUE(plan.pairBlackedOutAt(1, 3, 15.0));
    EXPECT_TRUE(plan.pairBlackedOutAt(3, 1, 15.0));
    EXPECT_FALSE(plan.pairBlackedOutAt(0, 3, 15.0));

    // Pair (1, 2): DC 1 clears at 30 but DC 2 is already dark, so the
    // clear time walks the chained windows to 40.
    EXPECT_DOUBLE_EQ(plan.blackoutClearTime(1, 2, 15.0), 40.0);
    // Pair (1, 3) only waits for DC 1.
    EXPECT_DOUBLE_EQ(plan.blackoutClearTime(1, 3, 15.0), 30.0);
    // A clear pair at a clear time answers t itself.
    EXPECT_DOUBLE_EQ(plan.blackoutClearTime(0, 3, 15.0), 15.0);
    EXPECT_DOUBLE_EQ(plan.blackoutClearTime(1, 2, 100.0), 100.0);
}

TEST(FaultPlan, AgentCrashAndGaugeWindows)
{
    std::vector<FaultEvent> evs;
    FaultEvent c;
    c.kind = FaultKind::AgentCrash;
    c.dc = 2;
    c.time = 5.0;
    c.duration = 10.0;
    evs.push_back(c);
    FaultEvent g;
    g.kind = FaultKind::ProbeLoss;
    g.time = 20.0;
    g.duration = 10.0;
    evs.push_back(g);
    g.kind = FaultKind::GaugeTimeout;
    g.time = 25.0;
    g.duration = 10.0;
    evs.push_back(g);
    const FaultPlan plan(evs, 4, 1);

    EXPECT_TRUE(plan.agentCrashedAt(2, 5.0));
    EXPECT_TRUE(plan.agentCrashedAt(2, 14.9));
    EXPECT_FALSE(plan.agentCrashedAt(2, 15.0));
    EXPECT_FALSE(plan.agentCrashedAt(1, 10.0));

    FaultKind kind = FaultKind::TransferAbort;
    EXPECT_FALSE(plan.gaugeFaultAt(19.9));
    EXPECT_TRUE(plan.gaugeFaultAt(21.0, &kind));
    EXPECT_EQ(kind, FaultKind::ProbeLoss);
    // Overlap: the costlier GaugeTimeout wins.
    EXPECT_TRUE(plan.gaugeFaultAt(27.0, &kind));
    EXPECT_EQ(kind, FaultKind::GaugeTimeout);
    EXPECT_TRUE(plan.gaugeFaultAt(32.0, &kind));
    EXPECT_EQ(kind, FaultKind::GaugeTimeout);
    EXPECT_FALSE(plan.gaugeFaultAt(35.0));
}

TEST(FaultPlan, RejectsMismatchedAndMalformedEvents)
{
    std::vector<FaultEvent> evs;
    FaultEvent b;
    b.kind = FaultKind::DcBlackout;
    b.dc = 7; // out of range for a 4-DC cluster
    evs.push_back(b);
    EXPECT_THROW(FaultPlan(evs, 4, 1), FatalError);

    evs.clear();
    FaultEvent a;
    a.kind = FaultKind::TransferAbort;
    a.time = -3.0;
    evs.push_back(a);
    EXPECT_THROW(FaultPlan(evs, 4, 1), FatalError);
}

// ---- retry policy -----------------------------------------------------------

TEST(RetryPolicy, CappedExponentialScheduleWithoutJitter)
{
    RetryPolicy p;
    p.baseBackoff = 2.0;
    p.multiplier = 2.0;
    p.maxBackoff = 10.0;
    p.jitterFraction = 0.0;
    EXPECT_DOUBLE_EQ(p.backoff(0, 1), 2.0);
    EXPECT_DOUBLE_EQ(p.backoff(1, 1), 4.0);
    EXPECT_DOUBLE_EQ(p.backoff(2, 1), 8.0);
    EXPECT_DOUBLE_EQ(p.backoff(3, 1), 10.0); // capped
    EXPECT_DOUBLE_EQ(p.backoff(9, 1), 10.0);
}

TEST(RetryPolicy, JitterStaysInBandAndIsSeedDeterministic)
{
    RetryPolicy p; // defaults: base 2, x2, cap 60, jitter 0.25
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        const Seconds d = p.backoff(1, seed);
        EXPECT_GE(d, 4.0 * (1.0 - 0.125));
        EXPECT_LE(d, 4.0 * (1.0 + 0.125));
        EXPECT_DOUBLE_EQ(d, p.backoff(1, seed));
    }
    // Distinct seeds desynchronize retries.
    EXPECT_NE(p.backoff(1, 11), p.backoff(1, 12));
}

// ---- predictor health ladder ------------------------------------------------

TEST(PredictorHealth, FullLadderDownAndUp)
{
    PredictorHealthConfig cfg; // 1 failure → Trend, 3 → Static
    PredictorHealth h(cfg);
    EXPECT_EQ(h.mode(), PredictorMode::Model);

    EXPECT_TRUE(h.recordFailure()); // Model → Trend
    EXPECT_EQ(h.mode(), PredictorMode::Trend);
    EXPECT_FALSE(h.recordFailure()); // 2 consecutive: still Trend
    EXPECT_TRUE(h.recordFailure()); // 3 consecutive → Static
    EXPECT_EQ(h.mode(), PredictorMode::Static);
    EXPECT_FALSE(h.recordFailure()); // already at the bottom

    EXPECT_TRUE(h.recordSuccess()); // Static → Trend
    EXPECT_EQ(h.mode(), PredictorMode::Trend);
    EXPECT_TRUE(h.recordSuccess()); // Trend → Model
    EXPECT_EQ(h.mode(), PredictorMode::Model);
    EXPECT_FALSE(h.recordSuccess()); // healthy: nothing to climb
}

TEST(PredictorHealth, SuccessResetsTheFailureStreak)
{
    PredictorHealthConfig cfg;
    cfg.failuresToStatic = 2;
    PredictorHealth h(cfg);
    EXPECT_TRUE(h.recordFailure()); // → Trend
    EXPECT_TRUE(h.recordSuccess()); // → Model, streak cleared
    EXPECT_TRUE(h.recordFailure()); // → Trend again, not Static
    EXPECT_EQ(h.mode(), PredictorMode::Trend);
}

// ---- engine: abort → retry → replan -----------------------------------------

namespace {

/** Skewed TeraSort under Tetrium with a plain (no-WANify) transfer. */
gda::QueryResult
runFaultRun(const FaultPlan *faults, std::uint64_t seed,
            RetryPolicy retry = {})
{
    const auto topo = experiments::workerCluster(4, 2);
    const auto job = workloads::teraSort(8.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadSkewed(job.inputBytes, {0.55, 0.25, 0.15, 0.05});
    sched::TetriumScheduler tetrium;

    gda::Engine engine(topo, experiments::defaultSimConfig(), seed);
    gda::RunOptions opts;
    opts.schedulerBw = Matrix<Mbps>::square(4, 500.0);
    opts.staticConnections = Matrix<int>::square(4, 2);
    opts.faults = faults;
    opts.retry = retry;
    return engine.run(job, hdfs.distribution(), tetrium, opts);
}

/** Wildcard transfer aborts early in the first shuffle. */
FaultPlan
abortStorm()
{
    std::vector<FaultEvent> evs;
    FaultEvent a;
    a.kind = FaultKind::TransferAbort;
    a.time = 5.0;
    evs.push_back(a);
    a.time = 12.0;
    evs.push_back(a);
    return FaultPlan(evs, 4, 7);
}

} // namespace

TEST(EngineFault, TransferAbortRetriesAndCompletes)
{
    const auto plan = abortStorm();
    const auto clean = runFaultRun(nullptr, 2024);
    const auto hit = runFaultRun(&plan, 2024);

    EXPECT_GE(hit.faultsInjected, 1u);
    EXPECT_GE(hit.transferAborts, 1u);
    EXPECT_GE(hit.transferRetries, 1u);
    EXPECT_GT(hit.lostBytes, 0.0);
    EXPECT_GT(hit.backoffSeconds, 0.0);
    // Recovery, not corruption: every stage still finishes and the
    // storm costs latency.
    ASSERT_EQ(hit.stages.size(), clean.stages.size());
    for (const auto &stage : hit.stages)
        EXPECT_GE(stage.end, stage.transferEnd);
    EXPECT_GT(hit.latency, clean.latency);
}

TEST(EngineFault, FaultRunsAreBitDeterministic)
{
    const auto plan = abortStorm();
    const auto a = runFaultRun(&plan, 321);
    const auto b = runFaultRun(&plan, 321);
    EXPECT_DOUBLE_EQ(a.latency, b.latency);
    EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
    EXPECT_EQ(a.transferAborts, b.transferAborts);
    EXPECT_EQ(a.transferRetries, b.transferRetries);
    EXPECT_DOUBLE_EQ(a.lostBytes, b.lostBytes);
    EXPECT_DOUBLE_EQ(a.backoffSeconds, b.backoffSeconds);
}

TEST(EngineFault, EmptyPlanMatchesFaultFreeBitIdentically)
{
    // The fault-free arm must be structurally untouched by the fault
    // machinery: an empty plan and a null plan take the same code
    // paths and produce the same bits.
    const FaultPlan empty;
    const auto null = runFaultRun(nullptr, 777);
    const auto hollow = runFaultRun(&empty, 777);
    EXPECT_DOUBLE_EQ(null.latency, hollow.latency);
    EXPECT_DOUBLE_EQ(null.cost.total(), hollow.cost.total());
    EXPECT_DOUBLE_EQ(null.minObservedBw, hollow.minObservedBw);
    EXPECT_EQ(hollow.faultsInjected, 0u);
    EXPECT_EQ(hollow.transferAborts, 0u);
}

TEST(EngineFault, ExhaustedRetriesReplanTheResidual)
{
    // maxAttempts = 1: the first abort exhausts the budget and the
    // undelivered bytes must be re-placed on an alternate path.
    RetryPolicy oneShot;
    oneShot.maxAttempts = 1;
    const auto plan = abortStorm();
    const auto r = runFaultRun(&plan, 2024, oneShot);
    EXPECT_GE(r.transferAborts, 1u);
    EXPECT_GE(r.faultReplans, 1u);
    EXPECT_GT(r.lostBytes, 0.0);
    EXPECT_GT(r.latency, 0.0);
    for (const auto &stage : r.stages)
        EXPECT_GE(stage.end, stage.transferEnd);
}

TEST(EngineFault, BlackoutDefersTransfersAndRecovers)
{
    std::vector<FaultEvent> evs;
    FaultEvent b;
    b.kind = FaultKind::DcBlackout;
    b.dc = 1;
    b.time = 3.0;
    b.duration = 27.0;
    evs.push_back(b);
    const FaultPlan plan(evs, 4, 7);

    const auto clean = runFaultRun(nullptr, 404);
    const auto dark = runFaultRun(&plan, 404);
    EXPECT_GE(dark.blackouts, 1u);
    EXPECT_GE(dark.transferAborts, 1u);
    // Deferred sends wait out the window, so the job pays for it but
    // still completes every stage.
    EXPECT_GT(dark.latency, clean.latency);
    ASSERT_EQ(dark.stages.size(), clean.stages.size());
    EXPECT_DOUBLE_EQ(runFaultRun(&plan, 404).latency, dark.latency);
}

// ---- engine: the degradation ladder end to end ------------------------------

namespace {

core::WanifyConfig
ladderWanifyConfig()
{
    core::WanifyConfig cfg;
    // 4 DCs: a mesh is 12 pairs; one DC's row+col is 6/12 = 50%.
    cfg.drift.windowSize = 24;
    cfg.drift.minObservations = 12;
    cfg.drift.retrainFraction = 0.2;
    return cfg;
}

/**
 * Drift-triggering outage plus a gauge-fault window: the retrain that
 * the drift detector demands cannot gauge, so the predictor must step
 * down the ladder instead of retraining.
 */
gda::QueryResult
runLadderRun(Seconds gaugeFaultStart, Seconds gaugeFaultLen,
             FaultKind gaugeKind, PredictorHealthConfig healthCfg,
             std::uint64_t seed, double jobGb = 8.0,
             Seconds outageLen = 3000.0)
{
    scenario::ScenarioSpec spec;
    spec.name = "ladder";
    scenario::ScenarioEvent ev;
    ev.kind = scenario::EventKind::Outage;
    ev.start = 10.0;
    ev.duration = outageLen;
    ev.residual = 0.3;
    spec.events.push_back(ev);
    if (gaugeFaultLen > 0.0) {
        FaultEvent g;
        g.kind = gaugeKind;
        g.time = gaugeFaultStart;
        g.duration = gaugeFaultLen;
        spec.faults.push_back(g);
    }
    const scenario::ScenarioTimeline timeline(spec, 4, 99);

    core::Wanify wanify(ladderWanifyConfig());
    wanify.setPredictor(experiments::sharedPredictor());

    const auto topo = experiments::workerCluster(4, 2);
    const auto job = workloads::teraSort(jobGb);
    storage::HdfsStore hdfs(topo);
    hdfs.loadSkewed(job.inputBytes, {0.55, 0.25, 0.15, 0.05});
    sched::TetriumScheduler tetrium;

    gda::Engine engine(topo, experiments::defaultSimConfig(), seed);
    gda::RunOptions opts;
    opts.schedulerBw = Matrix<Mbps>::square(4, 500.0);
    opts.wanify = &wanify;
    opts.dynamics = &timeline;
    opts.adaptOnDrift = true;
    opts.predictorHealth = healthCfg;
    return engine.run(job, hdfs.distribution(), tetrium, opts);
}

} // namespace

TEST(EngineFault, GaugeOutageDegradesToTrendExtrapolation)
{
    // The whole run sits inside a ProbeLoss window: every retrain the
    // drift detector triggers must be served by the trend rung (the
    // initial prediction seeded the trend), and no warm-start retrain
    // may happen.
    const auto r = runLadderRun(0.0, 4000.0, FaultKind::ProbeLoss,
                                PredictorHealthConfig{}, 2024);
    EXPECT_GE(r.retrainTriggers, 1u);
    EXPECT_GE(r.gaugeFaults, 1u);
    EXPECT_GE(r.trendPlans, 1u);
    EXPECT_GE(r.predictorModeSwitches, 1u);
    EXPECT_GE(r.worstPredictorMode, 1);
    EXPECT_EQ(r.retrainsApplied, 0u);
    EXPECT_GT(r.latency, 0.0);
}

TEST(EngineFault, ImpatientLadderFallsToStaticApriori)
{
    // failuresToStatic = 1: the first failed gauge drops prediction
    // all the way to the static a-priori matrix.
    PredictorHealthConfig impatient;
    impatient.failuresToTrend = 1;
    impatient.failuresToStatic = 1;
    const auto r = runLadderRun(0.0, 4000.0, FaultKind::ProbeLoss,
                                impatient, 2024);
    EXPECT_GE(r.gaugeFaults, 1u);
    EXPECT_GE(r.staticPlans, 1u);
    EXPECT_EQ(r.worstPredictorMode, 2);
    EXPECT_GT(r.latency, 0.0);
}

TEST(EngineFault, LadderRecoversWhenGaugesReturn)
{
    // A finite outage fires the drift detector twice: once into the
    // outage (inside the gauge-fault window → ladder steps down) and
    // once at its recovery (gauges healthy again → a real warm-start
    // retrain and the ladder steps back up). At least two mode
    // switches — down, then up — with exactly the degraded retrain
    // skipped.
    const auto r = runLadderRun(0.0, 90.0, FaultKind::ProbeLoss,
                                PredictorHealthConfig{}, 2024, 24.0,
                                80.0);
    EXPECT_GE(r.gaugeFaults, 1u);
    EXPECT_GE(r.predictorModeSwitches, 2u);
    EXPECT_GE(r.worstPredictorMode, 1);
    EXPECT_GE(r.retrainsApplied, 1u);
    EXPECT_GT(r.latency, 0.0);
}

TEST(EngineFault, GaugeTimeoutDegradesLikeProbeLossAndCompletes)
{
    // Same fault geometry, costlier kind: the hung probe also pays a
    // measurement epoch before degrading, and the whole path must
    // stay bit-deterministic.
    const auto hung =
        runLadderRun(0.0, 4000.0, FaultKind::GaugeTimeout,
                     PredictorHealthConfig{}, 2024);
    EXPECT_GE(hung.gaugeFaults, 1u);
    EXPECT_GE(hung.worstPredictorMode, 1);
    EXPECT_EQ(hung.retrainsApplied, 0u);
    EXPECT_GT(hung.latency, 0.0);
    const auto again =
        runLadderRun(0.0, 4000.0, FaultKind::GaugeTimeout,
                     PredictorHealthConfig{}, 2024);
    EXPECT_DOUBLE_EQ(hung.latency, again.latency);
    EXPECT_EQ(hung.gaugeFaults, again.gaugeFaults);
}

// ---- aggregate rollup -------------------------------------------------------

TEST(RunnerFault, AggregateRollsUpFaultTelemetry)
{
    const auto plan = abortStorm();
    const auto agg = experiments::runTrials(
        [&](std::uint64_t seed) { return runFaultRun(&plan, seed); },
        3, 5000, experiments::Execution::Sequential);
    EXPECT_EQ(agg.trials, 3u);
    EXPECT_GE(agg.totalFaultsInjected, 3u);
    EXPECT_GE(agg.totalTransferAborts, 1u);
    EXPECT_GE(agg.totalTransferRetries, 1u);
    EXPECT_GT(agg.totalLostBytes, 0.0);
    EXPECT_GT(agg.meanBackoffSeconds, 0.0);

    // The parallel execution contract holds with faults in play.
    const auto par = experiments::runTrials(
        [&](std::uint64_t seed) { return runFaultRun(&plan, seed); },
        3, 5000, experiments::Execution::Parallel);
    EXPECT_DOUBLE_EQ(agg.meanLatency, par.meanLatency);
    EXPECT_EQ(agg.totalTransferAborts, par.totalTransferAborts);
    EXPECT_DOUBLE_EQ(agg.totalLostBytes, par.totalLostBytes);
}

// ---- scenario library & trace medium ----------------------------------------

TEST(FaultScenarios, LibraryExposesFaultStormsSeparately)
{
    const auto faulty = scenario::faultScenarioNames();
    ASSERT_EQ(faulty.size(), 2u);
    EXPECT_EQ(faulty[0], "fault-storm");
    EXPECT_EQ(faulty[1], "blackout");

    // campaignDynamics() cycles libraryScenarioNames() by index, so
    // the fault scenarios must NOT grow that list.
    const auto base = scenario::libraryScenarioNames();
    EXPECT_EQ(base.size(), 8u);
    for (const auto &name : faulty) {
        EXPECT_TRUE(scenario::isLibraryScenario(name));
        EXPECT_EQ(std::count(base.begin(), base.end(), name), 0);
        const auto spec = scenario::libraryScenario(name);
        EXPECT_FALSE(spec.faults.empty());
        const scenario::ScenarioTimeline timeline(spec, 4, 3);
        ASSERT_NE(timeline.faultPlan(), nullptr);
        EXPECT_FALSE(timeline.faultPlan()->empty());
    }
}

TEST(FaultScenarios, FaultStormRunsEndToEnd)
{
    const auto spec = scenario::libraryScenario("fault-storm");
    const scenario::ScenarioTimeline timeline(spec, 4, 11);

    const auto topo = experiments::workerCluster(4, 2);
    const auto job = workloads::teraSort(8.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    sched::TetriumScheduler tetrium;

    gda::Engine engine(topo, experiments::defaultSimConfig(), 555);
    gda::RunOptions opts;
    opts.schedulerBw = Matrix<Mbps>::square(4, 500.0);
    opts.staticConnections = Matrix<int>::square(4, 2);
    opts.dynamics = &timeline; // fault plan consumed from dynamics
    const auto r = engine.run(job, hdfs.distribution(), tetrium, opts);
    EXPECT_GE(r.faultsInjected, 1u);
    EXPECT_GT(r.latency, 0.0);
}

TEST(FaultTrace, FaultEventsSurviveTheCsvRoundTrip)
{
    scenario::BwTrace trace;
    trace.dcs = 2;
    trace.add(5.0, {1.0, 0.5, 0.5, 1.0});
    trace.add(10.0, {1.0, 0.25, 0.25, 1.0});
    scenario::BurstFlow burst;
    burst.start = 2.0;
    burst.duration = 4.0;
    burst.src = 0;
    burst.dst = 1;
    trace.bursts.push_back(burst);
    FaultEvent a;
    a.kind = FaultKind::TransferAbort;
    a.src = 0;
    a.dst = 1;
    a.time = 3.0;
    trace.faults.push_back(a);
    FaultEvent b;
    b.kind = FaultKind::DcBlackout;
    b.dc = 1;
    b.time = 6.0;
    b.duration = 2.0;
    trace.faults.push_back(b);

    const auto path = tmpPath("roundtrip.csv");
    scenario::writeTraceCsv(path, trace);
    const auto loaded = scenario::readTraceCsv(path);
    std::remove(path.c_str());

    EXPECT_TRUE(loaded.identical(trace));
    EXPECT_EQ(loaded.hash(), trace.hash());
    ASSERT_EQ(loaded.faults.size(), 2u);
    EXPECT_EQ(loaded.faults[0].kind, FaultKind::TransferAbort);
    EXPECT_EQ(loaded.faults[1].kind, FaultKind::DcBlackout);
    EXPECT_DOUBLE_EQ(loaded.faults[1].duration, 2.0);

    const scenario::TraceReplay replay(loaded);
    ASSERT_NE(replay.faultPlan(), nullptr);
    EXPECT_EQ(replay.faultPlan()->events().size(), 2u);
    EXPECT_TRUE(replay.faultPlan()->blackoutAt(1, 7.0));
}

TEST(FaultTrace, ReadErrorsNameTheOffendingFile)
{
    const auto missing = tmpPath("does_not_exist.csv");
    try {
        scenario::readTraceCsv(missing);
        FAIL() << "expected FatalError for a missing trace";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(missing),
                  std::string::npos);
    }

    // A truncated/garbage file must fail cleanly, naming the path,
    // instead of surfacing a bare parser error.
    const auto path = tmpPath("truncated.csv");
    std::FILE *f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("t,cap_0_0,cap_0_1\n1.0,0.5\n", f);
    std::fclose(f);
    try {
        scenario::readTraceCsv(path);
        FAIL() << "expected FatalError for a truncated trace";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(path),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

// ---- serve layer: kill / requeue / blackout admission -----------------------

namespace {

/** An identical multi-DC analytics query that must shuffle. */
serve::QuerySpec
wanServeQuery(std::size_t i, std::size_t dcCount)
{
    serve::QuerySpec q;
    q.name = "w" + std::to_string(i);
    q.job = workloads::tpcDsQuery(workloads::TpcDsQuery::Q95, 1.0);
    std::vector<double> frac(dcCount, 0.0);
    double sum = 0.0;
    for (std::size_t d = 0; d < dcCount; ++d) {
        frac[d] = std::pow(0.6, static_cast<double>(d));
        sum += frac[d];
    }
    q.inputByDc.assign(dcCount, 0.0);
    for (std::size_t d = 0; d < dcCount; ++d)
        q.inputByDc[d] = q.job.inputBytes * frac[d] / sum;
    return q;
}

/** A single-stage local query confined to one DC (no WAN traffic). */
serve::QuerySpec
localServeQuery(std::size_t i, std::size_t dc, std::size_t dcCount)
{
    serve::QuerySpec q;
    q.name = "l" + std::to_string(i);
    gda::StageSpec stage;
    stage.name = "scan-agg";
    stage.selectivity = 0.05;
    stage.workPerMb = 0.5;
    q.job.name = "local";
    q.job.stages.push_back(stage);
    q.job.inputBytes = 1.0e9;
    q.inputByDc.assign(dcCount, 0.0);
    q.inputByDc[dc] = q.job.inputBytes;
    return q;
}

} // namespace

TEST(ServiceFault, FaultKillRequeuesAndEveryQueryCompletes)
{
    std::vector<FaultEvent> evs;
    FaultEvent a;
    a.kind = FaultKind::TransferAbort;
    a.time = 5.0; // mid-shuffle for the t = 0 cohort
    evs.push_back(a);
    const FaultPlan plan(evs, 4, 3);

    serve::ServiceConfig cfg;
    cfg.maxConcurrent = 6;
    cfg.faults = &plan;
    cfg.requeueBackoff = 10.0;
    auto run = [&] {
        serve::Service service(experiments::workerCluster(4), cfg,
                               experiments::quietSimConfig(),
                               nullptr, 55);
        for (std::size_t i = 0; i < 4; ++i)
            service.submit(wanServeQuery(i, 4));
        return service.drain();
    };
    const auto a1 = run();
    EXPECT_GE(a1.faultKills, 1u);
    EXPECT_GE(a1.requeuedQueries, 1u);
    EXPECT_EQ(a1.failedQueries, 0u);
    EXPECT_EQ(a1.completed, 4u);
    bool sawRequeue = false;
    for (const auto &q : a1.queries) {
        EXPECT_FALSE(q.killedByFault);
        sawRequeue = sawRequeue || q.requeues > 0;
    }
    EXPECT_TRUE(sawRequeue);

    const auto a2 = run();
    EXPECT_EQ(a1.resultHash, a2.resultHash);
    EXPECT_EQ(a1.faultKills, a2.faultKills);
}

TEST(ServiceFault, ExhaustedRequeuesAreReportedFailed)
{
    std::vector<FaultEvent> evs;
    FaultEvent a;
    a.kind = FaultKind::TransferAbort;
    a.time = 5.0;
    evs.push_back(a);
    const FaultPlan plan(evs, 4, 3);

    serve::ServiceConfig cfg;
    cfg.maxConcurrent = 6;
    cfg.faults = &plan;
    cfg.maxRequeues = 0; // the first kill is terminal
    serve::Service service(experiments::workerCluster(4), cfg,
                           experiments::quietSimConfig(), nullptr,
                           55);
    for (std::size_t i = 0; i < 4; ++i)
        service.submit(wanServeQuery(i, 4));
    const auto report = service.drain();
    EXPECT_GE(report.faultKills, 1u);
    EXPECT_GE(report.failedQueries, 1u);
    EXPECT_EQ(report.requeuedQueries, 0u);
    EXPECT_EQ(report.completed + report.failedQueries +
                  report.timedOut,
              4u);
    std::size_t flagged = 0;
    for (const auto &q : report.queries)
        if (q.killedByFault)
            ++flagged;
    EXPECT_EQ(flagged, report.failedQueries);
}

TEST(ServiceFault, BlackoutShrinksTheAdmissionCap)
{
    // A whole-horizon blackout of DC 3 with purely local queries on
    // DC 0: nothing gets killed (no WAN traffic touches DC 3), but
    // admission must throttle to ceil(4 * 0.25) = 1 slot while any
    // blackout is active.
    std::vector<FaultEvent> evs;
    FaultEvent b;
    b.kind = FaultKind::DcBlackout;
    b.dc = 3;
    b.time = 0.0;
    b.duration = 1.0e7;
    evs.push_back(b);
    const FaultPlan plan(evs, 4, 3);

    auto run = [&](const FaultPlan *faults) {
        serve::ServiceConfig cfg;
        cfg.maxConcurrent = 4;
        cfg.scheduler = serve::SchedulerKind::Locality;
        cfg.faults = faults;
        cfg.blackoutAdmissionFactor = 0.25;
        serve::Service service(experiments::workerCluster(4), cfg,
                               experiments::quietSimConfig(),
                               nullptr, 63);
        for (std::size_t i = 0; i < 4; ++i)
            service.submit(localServeQuery(i, 0, 4));
        return service.drain();
    };

    const auto dark = run(&plan);
    EXPECT_EQ(dark.completed, 4u);
    EXPECT_EQ(dark.faultKills, 0u);
    EXPECT_EQ(dark.peakConcurrent, 1u);

    const auto bright = run(nullptr);
    EXPECT_EQ(bright.completed, 4u);
    EXPECT_EQ(bright.peakConcurrent, 4u);
    EXPECT_LT(bright.makespan, dark.makespan);
}
