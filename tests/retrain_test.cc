/**
 * @file
 * Tests for the online warm-start retraining loop (Section 3.3.4):
 * bit-identical warm starts across execution modes, atomic predictor
 * swaps on the shared facade under concurrent trials, and the
 * end-to-end outage -> gauge -> retrain -> error-drops path through
 * the GDA engine.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/error.hh"
#include "core/wanify.hh"
#include "experiments/predictor_factory.hh"
#include "experiments/runner.hh"
#include "experiments/testbed.hh"
#include "gda/engine.hh"
#include "ml/random_forest.hh"
#include "sched/locality.hh"
#include "scenario/scenario.hh"
#include "storage/hdfs.hh"
#include "workloads/terasort.hh"

using namespace wanify;

namespace {

/** y = 3x0 + noise on x1 (irrelevant feature). */
ml::Dataset
linearData(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    ml::Dataset data(2, 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(0.0, 10.0);
        const double x1 = rng.uniform(0.0, 10.0);
        data.add({x0, x1}, 3.0 * x0 + rng.normal(0.0, 0.05));
    }
    return data;
}

/** A fast Bandwidth Analyzer campaign (feature-shaped datasets). */
core::AnalyzerConfig
smallAnalyzerConfig()
{
    core::AnalyzerConfig cfg;
    cfg.clusterSizes = {4};
    cfg.meshesPerSize = 6;
    cfg.sim = experiments::defaultSimConfig();
    return cfg;
}

core::WanifyConfig
smallWanifyConfig()
{
    core::WanifyConfig cfg;
    cfg.forest.nEstimators = 20;
    cfg.forest.tree.maxDepth = 10;
    cfg.forest.bootstrapFraction = 0.8;
    cfg.retrainExtraTrees = 5;
    return cfg;
}

/** All-pairs capacity drop long enough to overlap any shuffle. */
scenario::ScenarioSpec
longOutageSpec(double residual)
{
    scenario::ScenarioSpec spec;
    spec.name = "test-long-outage";
    scenario::ScenarioEvent ev;
    ev.kind = scenario::EventKind::Outage;
    ev.start = 10.0;
    ev.duration = 3000.0;
    ev.residual = residual;
    spec.events.push_back(ev);
    return spec;
}

/** Scenario-sized drift window for a 4-DC cluster (12-pair mesh). */
core::WanifyConfig
engineWanifyConfig()
{
    core::WanifyConfig cfg;
    cfg.drift.windowSize = 24;
    cfg.drift.minObservations = 12;
    cfg.drift.retrainFraction = 0.2;
    return cfg;
}

gda::QueryResult
runUnderDynamics(const scenario::Dynamics *dynamics,
                 const core::Wanify &wanify, std::uint64_t seed,
                 bool publish)
{
    const auto topo = experiments::workerCluster(4, 2);
    const auto job = workloads::teraSort(8.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    sched::LocalityScheduler locality;

    gda::Engine engine(topo, experiments::defaultSimConfig(), seed);
    gda::RunOptions opts;
    opts.schedulerBw = Matrix<Mbps>::square(4, 500.0);
    opts.wanify = &wanify;
    opts.dynamics = dynamics;
    opts.adaptOnDrift = true;
    opts.publishRetrainedModel = publish;
    return engine.run(job, hdfs.distribution(), locality, opts);
}

} // namespace

// ---- warm-start determinism -------------------------------------------------

TEST(WarmStart, SequentialAndParallelBitIdentical)
{
    const auto base = linearData(300, 10);
    auto grown = base;
    grown.append(linearData(150, 11));

    ml::ForestConfig seq, pool, capped;
    seq.nEstimators = 12;
    seq.nThreads = 1;
    pool.nEstimators = 12;
    pool.nThreads = 0;
    capped.nEstimators = 12;
    capped.nThreads = 3;

    ml::RandomForestRegressor a(seq), b(pool), c(capped);
    a.fit(base, 42);
    b.fit(base, 42);
    c.fit(base, 42);
    a.warmStart(grown, 7, 43);
    b.warmStart(grown, 7, 43);
    c.warmStart(grown, 7, 43);

    EXPECT_EQ(a.treeCount(), 19u);
    EXPECT_EQ(b.treeCount(), 19u);
    EXPECT_EQ(c.treeCount(), 19u);
    for (double x = 0.0; x <= 10.0; x += 0.5) {
        const double ya = a.predictScalar({x, 3.0});
        EXPECT_DOUBLE_EQ(ya, b.predictScalar({x, 3.0}));
        EXPECT_DOUBLE_EQ(ya, c.predictScalar({x, 3.0}));
    }
    EXPECT_DOUBLE_EQ(a.oobR2(), b.oobR2());
    EXPECT_DOUBLE_EQ(a.oobR2(), c.oobR2());
}

// ---- facade retraining and the atomic swap ----------------------------------

TEST(WanifyRetrain, PublishSwapsTheModelAndOldSnapshotsSurvive)
{
    core::Wanify wanify(smallWanifyConfig());
    wanify.train(smallAnalyzerConfig(), 501);
    ASSERT_TRUE(wanify.trained());

    const auto before = wanify.predictorSnapshot();
    ASSERT_NE(before, nullptr);
    const std::size_t baseTrees = before->forest().treeCount();

    core::BandwidthAnalyzer analyzer(smallAnalyzerConfig());
    const ml::Dataset extra = analyzer.collect(777);

    const auto after = wanify.retrain(extra, 901);
    EXPECT_NE(before.get(), after.get());
    EXPECT_EQ(after->forest().treeCount(), baseTrees + 5);
    // Published: future snapshots see the retrained model...
    EXPECT_EQ(wanify.predictorSnapshot().get(), after.get());
    // ...while the pinned old snapshot is untouched.
    EXPECT_EQ(before->forest().treeCount(), baseTrees);
}

TEST(WanifyRetrain, WithoutPublishTheFacadeKeepsItsModel)
{
    core::Wanify wanify(smallWanifyConfig());
    wanify.train(smallAnalyzerConfig(), 502);
    const auto before = wanify.predictorSnapshot();

    core::BandwidthAnalyzer analyzer(smallAnalyzerConfig());
    const auto next = wanify.retrain(analyzer.collect(778), 902,
                                     nullptr, /*publish=*/false);
    EXPECT_NE(next.get(), before.get());
    EXPECT_EQ(wanify.predictorSnapshot().get(), before.get());
}

TEST(WanifyRetrain, UntrainedFacadeWarmStartsFromScratch)
{
    core::Wanify wanify(smallWanifyConfig());
    EXPECT_FALSE(wanify.trained());

    core::BandwidthAnalyzer analyzer(smallAnalyzerConfig());
    const auto p = wanify.retrain(analyzer.collect(779), 903);
    ASSERT_NE(p, nullptr);
    EXPECT_TRUE(p->trained());
    // The extra trees are the whole ensemble.
    EXPECT_EQ(p->forest().treeCount(), 5u);
    EXPECT_TRUE(wanify.trained());
}

TEST(WanifyRetrain, DeterministicInBaseDataAndSeed)
{
    core::Wanify wanify(smallWanifyConfig());
    wanify.train(smallAnalyzerConfig(), 503);
    const auto base = wanify.predictorSnapshot();

    core::BandwidthAnalyzer analyzer(smallAnalyzerConfig());
    const ml::Dataset extra = analyzer.collect(780);
    const auto p1 = wanify.retrain(extra, 904, base, false);
    const auto p2 = wanify.retrain(extra, 904, base, false);

    const auto topo = experiments::workerCluster(4, 1);
    net::NetworkSim sim(topo, experiments::defaultSimConfig(), 5);
    sim.advanceBy(5.0);
    monitor::MeshMeasurer measurer(sim);
    Rng rng(6);
    const auto snapshot =
        measurer.snapshot(monitor::MeasurementConfig{}, rng);
    const auto m1 = p1->predictMatrix(topo, snapshot);
    const auto m2 = p2->predictMatrix(topo, snapshot);
    for (net::DcId i = 0; i < 4; ++i)
        for (net::DcId j = 0; j < 4; ++j)
            EXPECT_DOUBLE_EQ(m1.at(i, j), m2.at(i, j));
}

// ---- engine: the learning loop end to end -----------------------------------

TEST(EngineRetrain, OutageGaugeRetrainDropsPredictionError)
{
    const auto spec = longOutageSpec(0.3);
    const scenario::ScenarioTimeline timeline(spec, 4, 99);

    core::Wanify wanify(engineWanifyConfig());
    wanify.setPredictor(experiments::sharedPredictor());

    const auto result =
        runUnderDynamics(&timeline, wanify, 2024, false);
    ASSERT_GE(result.retrainsApplied, 1u);
    EXPECT_GE(result.retrainTriggers, result.retrainsApplied);
    EXPECT_GT(result.preRetrainError, 0.0);
    EXPECT_GT(result.postRetrainError, 0.0);
    // The warm-started model must beat the stale one on a fresh,
    // out-of-sample gauge of the drifted regime.
    EXPECT_LT(result.postRetrainError, result.preRetrainError);
}

TEST(EngineRetrain, SequentialAndParallelTrialsBitIdentical)
{
    const auto spec = longOutageSpec(0.3);
    const scenario::ScenarioTimeline timeline(spec, 4, 3);

    core::Wanify wanify(engineWanifyConfig());
    wanify.setPredictor(experiments::sharedPredictor());

    auto fn = [&](std::uint64_t seed) {
        return runUnderDynamics(&timeline, wanify, seed, false);
    };
    const auto seq = experiments::runTrials(
        fn, 3, 42, experiments::Execution::Sequential);
    const auto par = experiments::runTrials(
        fn, 3, 42, experiments::Execution::Parallel);

    EXPECT_GT(seq.totalRetrainsApplied, 0u);
    EXPECT_EQ(seq.totalRetrainsApplied, par.totalRetrainsApplied);
    EXPECT_EQ(seq.trialsRetrained, par.trialsRetrained);
    EXPECT_DOUBLE_EQ(seq.meanLatency, par.meanLatency);
    EXPECT_DOUBLE_EQ(seq.meanPreRetrainError,
                     par.meanPreRetrainError);
    EXPECT_DOUBLE_EQ(seq.meanPostRetrainError,
                     par.meanPostRetrainError);
}

TEST(EngineRetrain, ConcurrentPublishingTrialsAreSafe)
{
    const auto spec = longOutageSpec(0.3);
    const scenario::ScenarioTimeline timeline(spec, 4, 5);

    // Private facade: publishing mutates it, so don't share the
    // process-wide predictor cache's *facade* (the predictor itself
    // is immutable and safe to seed from).
    core::Wanify wanify(engineWanifyConfig());
    wanify.setPredictor(experiments::sharedPredictor());
    const std::size_t baseTrees =
        wanify.predictorSnapshot()->forest().treeCount();

    const auto agg = experiments::runTrials(
        [&](std::uint64_t seed) {
            return runUnderDynamics(&timeline, wanify, seed, true);
        },
        4, 77, experiments::Execution::Parallel);

    // Every trial retrains under the long outage, each publish
    // atomically swaps the facade model, and the final published
    // model carries at least one warm start's worth of extra trees.
    EXPECT_GT(agg.totalRetrainsApplied, 0u);
    EXPECT_GT(wanify.predictorSnapshot()->forest().treeCount(),
              baseTrees);
    EXPECT_GT(agg.meanLatency, 0.0);
}

TEST(EngineRetrain, CampaignAccumulatesGaugesAcrossSequentialRuns)
{
    const auto spec = longOutageSpec(0.3);
    const scenario::ScenarioTimeline timeline(spec, 4, 8);

    core::Wanify wanify(engineWanifyConfig());
    wanify.setPredictor(experiments::sharedPredictor());

    core::AnalyzerConfig campaignCfg;
    campaignCfg.clusterSizes = {4};
    core::BandwidthAnalyzer campaign(campaignCfg);

    const auto topo = experiments::workerCluster(4, 2);
    const auto job = workloads::teraSort(8.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    sched::LocalityScheduler locality;

    std::size_t totalRetrains = 0;
    std::size_t afterFirstRun = 0;
    for (std::uint64_t seed : {601ULL, 602ULL}) {
        gda::Engine engine(topo, experiments::defaultSimConfig(),
                           seed);
        gda::RunOptions opts;
        opts.schedulerBw = Matrix<Mbps>::square(4, 500.0);
        opts.wanify = &wanify;
        opts.dynamics = &timeline;
        opts.adaptOnDrift = true;
        opts.publishRetrainedModel = true;
        opts.campaign = &campaign;
        const auto res =
            engine.run(job, hdfs.distribution(), locality, opts);
        totalRetrains += res.retrainsApplied;
        if (afterFirstRun == 0)
            afterFirstRun = campaign.incremental().size();
    }
    ASSERT_GE(totalRetrains, 2u);
    // One 4-DC mesh = 12 rows per retrain, pooled across both runs.
    EXPECT_EQ(campaign.incremental().size(), totalRetrains * 12);
    EXPECT_GT(campaign.incremental().size(), afterFirstRun);
}

TEST(EngineRetrain, NoDynamicsMeansNoRetrains)
{
    core::Wanify wanify(engineWanifyConfig());
    wanify.setPredictor(experiments::sharedPredictor());
    const auto result =
        runUnderDynamics(nullptr, wanify, 2024, false);
    EXPECT_EQ(result.retrainsApplied, 0u);
    EXPECT_DOUBLE_EQ(result.preRetrainError, 0.0);
    EXPECT_DOUBLE_EQ(result.postRetrainError, 0.0);
}
