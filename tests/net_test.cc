/**
 * @file
 * Unit and property tests for the WAN substrate: regions, RTT model,
 * fluctuation, topology, flow solver, and the network simulator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/error.hh"
#include "common/stats.hh"
#include "net/flow_solver.hh"
#include "net/fluctuation.hh"
#include "net/network_sim.hh"
#include "net/region.hh"
#include "net/rtt_model.hh"
#include "net/topology.hh"
#include "net/vm.hh"

using namespace wanify;
using namespace wanify::net;

namespace {

Topology
paperTopo(std::size_t n = 8)
{
    return TopologyBuilder::paperTestbed(n, VmTypeCatalog::t3nano());
}

NetworkSimConfig
quiet()
{
    NetworkSimConfig cfg;
    cfg.fluctuation.enabled = false;
    return cfg;
}

} // namespace

// ---- regions ---------------------------------------------------------------

TEST(Region, CatalogHasEightPaperRegions)
{
    const auto regions = RegionCatalog::paperRegions();
    ASSERT_EQ(regions.size(), 8u);
    EXPECT_EQ(regions[RegionCatalog::UsEast].id, "us-east-1");
    EXPECT_EQ(regions[RegionCatalog::SaEast].id, "sa-east-1");
}

TEST(Region, SubsetBoundsChecked)
{
    EXPECT_THROW(RegionCatalog::paperSubset(1), FatalError);
    EXPECT_THROW(RegionCatalog::paperSubset(9), FatalError);
    EXPECT_EQ(RegionCatalog::paperSubset(4).size(), 4u);
}

TEST(Region, ByIdFindsAndFails)
{
    EXPECT_EQ(RegionCatalog::byId("eu-west-1").displayName,
              "EU West (Ireland)");
    EXPECT_THROW(RegionCatalog::byId("mars-north-1"), FatalError);
}

TEST(Region, DistancesMatchGeography)
{
    const auto &east = RegionCatalog::byId("us-east-1");
    const auto &west = RegionCatalog::byId("us-west-1");
    const auto &sing = RegionCatalog::byId("ap-southeast-1");
    EXPECT_NEAR(distanceKm(east, west), 3860.0, 120.0);
    EXPECT_NEAR(distanceKm(east, sing), 15540.0, 300.0);
}

// ---- RTT model -------------------------------------------------------------

TEST(RttModel, CalibratedToPaperAnchors)
{
    // Single-connection US East <-> US West ~1700 Mbps and US East <->
    // AP SE ~121 Mbps (Fig. 1).
    const RttModel model;
    const auto &east = RegionCatalog::byId("us-east-1");
    const auto &west = RegionCatalog::byId("us-west-1");
    const auto &sing = RegionCatalog::byId("ap-southeast-1");
    EXPECT_NEAR(model.connCapForDistance(distanceKm(east, west)),
                1700.0, 100.0);
    EXPECT_NEAR(model.connCapForDistance(distanceKm(east, sing)),
                121.0, 15.0);
}

TEST(RttModel, RttMonotoneInDistance)
{
    const RttModel model;
    Seconds prev = 0.0;
    for (double km : {100.0, 1000.0, 5000.0, 15000.0}) {
        const Seconds rtt = model.rtt(km);
        EXPECT_GT(rtt, prev);
        prev = rtt;
    }
}

TEST(RttModel, ConnCapClamped)
{
    RttModelParams params;
    const RttModel model(params);
    EXPECT_LE(model.connCap(0.001), params.maxConnCap);
    EXPECT_GE(model.connCap(10.0), params.minConnCap);
}

// ---- fluctuation -----------------------------------------------------------

TEST(Fluctuation, DisabledIsIdentity)
{
    FluctuationParams params;
    params.enabled = false;
    OuProcess p(params, Rng(1));
    for (int i = 0; i < 10; ++i)
        EXPECT_DOUBLE_EQ(p.step(1.0), 1.0);
}

TEST(Fluctuation, StationaryMeanNearOne)
{
    FluctuationParams params;
    OuProcess p(params, Rng(42));
    stats::RunningStats acc;
    for (int i = 0; i < 20000; ++i)
        acc.push(p.step(1.0));
    EXPECT_NEAR(acc.mean(), 1.0, 0.05);
    EXPECT_GT(acc.stddev(), 0.05);
}

TEST(Fluctuation, BankProcessesAreIndependent)
{
    FluctuationBank bank(4, FluctuationParams{}, 7);
    bank.step(1.0);
    // At least two processes should differ after one step.
    bool anyDifferent = false;
    for (std::size_t i = 1; i < bank.size(); ++i)
        anyDifferent |= bank.multiplier(i) != bank.multiplier(0);
    EXPECT_TRUE(anyDifferent);
}

TEST(Fluctuation, ZeroStepDoesNotPerturbTheStream)
{
    // step(0) (and negative / NaN dt) must not consume RNG state:
    // interleaving zero-length steps must leave the stream exactly
    // where back-to-back real steps would.
    FluctuationParams params;
    OuProcess a(params, Rng(99));
    OuProcess b(params, Rng(99));
    a.step(1.0);
    b.step(1.0);
    const double before = a.multiplier();
    EXPECT_DOUBLE_EQ(a.step(0.0), before);
    EXPECT_DOUBLE_EQ(a.step(-1.0), before);
    EXPECT_DOUBLE_EQ(a.step(std::nan("")), before);
    EXPECT_DOUBLE_EQ(a.step(1.0), b.step(1.0));
}

TEST(Fluctuation, DisabledConsistentInInitAndStep)
{
    FluctuationParams params;
    params.enabled = false;
    OuProcess p(params, Rng(1));
    // Stationary init honors the flag: multiplier is exactly 1
    // before any step, after zero steps, and after real steps.
    EXPECT_DOUBLE_EQ(p.multiplier(), 1.0);
    EXPECT_DOUBLE_EQ(p.step(0.0), 1.0);
    EXPECT_DOUBLE_EQ(p.step(5.0), 1.0);
    p.reseedStationary();
    EXPECT_DOUBLE_EQ(p.multiplier(), 1.0);
    EXPECT_FALSE(p.active());

    // Zero sigma behaves identically to disabled.
    FluctuationParams zero;
    zero.logSigma = 0.0;
    OuProcess q(zero, Rng(1));
    EXPECT_FALSE(q.active());
    EXPECT_DOUBLE_EQ(q.step(5.0), 1.0);
}

TEST(Fluctuation, RejectsNonFiniteParams)
{
    FluctuationParams params;
    params.theta = std::numeric_limits<double>::quiet_NaN();
    EXPECT_THROW(OuProcess(params, Rng(1)), FatalError);
    params.theta = 0.08;
    params.logSigma = std::numeric_limits<double>::infinity();
    EXPECT_THROW(OuProcess(params, Rng(1)), FatalError);
}

// ---- topology --------------------------------------------------------------

TEST(Topology, BuilderWiresDcsAndVms)
{
    const auto topo = paperTopo(4);
    EXPECT_EQ(topo.dcCount(), 4u);
    EXPECT_EQ(topo.vmCount(), 4u);
    for (DcId d = 0; d < 4; ++d) {
        ASSERT_EQ(topo.dc(d).vms.size(), 1u);
        EXPECT_EQ(topo.vm(topo.dc(d).vms[0]).dc, d);
    }
}

TEST(Topology, HeterogeneousVmCounts)
{
    TopologyBuilder builder;
    builder.addDc(RegionCatalog::byId("us-east-1"),
                  VmTypeCatalog::t2medium(), 2);
    builder.addDc(RegionCatalog::byId("eu-west-1"),
                  VmTypeCatalog::t2medium(), 1);
    builder.addVm(1, VmTypeCatalog::t2large());
    const auto topo = builder.build();
    EXPECT_EQ(topo.vmCount(), 4u);
    EXPECT_EQ(topo.dc(1).vms.size(), 2u);
    EXPECT_EQ(topo.vm(topo.dc(1).vms[1]).type.name, "t2.large");
}

TEST(Topology, PairIndexIsDense)
{
    const auto topo = paperTopo(4);
    std::set<std::size_t> seen;
    for (DcId i = 0; i < 4; ++i)
        for (DcId j = 0; j < 4; ++j)
            seen.insert(topo.pairIndex(i, j));
    EXPECT_EQ(seen.size(), 16u);
    EXPECT_EQ(*seen.rbegin(), 15u);
}

TEST(Topology, RouteQualityDeterministicAndBounded)
{
    const auto a = paperTopo(8);
    const auto b = paperTopo(8);
    for (DcId i = 0; i < 8; ++i) {
        for (DcId j = 0; j < 8; ++j) {
            EXPECT_DOUBLE_EQ(a.routeQuality(i, j),
                             b.routeQuality(i, j));
            if (i != j) {
                EXPECT_GE(a.routeQuality(i, j), 0.55);
                EXPECT_LE(a.routeQuality(i, j), 1.0);
            }
        }
    }
}

TEST(Topology, RouteQualityStableAcrossClusterSizes)
{
    // The same region pair must keep its quality in any subset, or
    // the predictor's training would not transfer across sizes.
    const auto small = paperTopo(4);
    const auto big = paperTopo(8);
    for (DcId i = 0; i < 4; ++i)
        for (DcId j = 0; j < 4; ++j)
            EXPECT_DOUBLE_EQ(small.routeQuality(i, j),
                             big.routeQuality(i, j));
}

// ---- flow solver: unit cases -------------------------------------------------

namespace {

SolverInputs
simpleInputs(std::size_t vms, std::size_t dcs, Mbps vmCap = 1000.0,
             Mbps pathCap = 1.0e6)
{
    SolverInputs in;
    in.dcCount = dcs;
    in.vmEgressCap.assign(vms, vmCap);
    in.vmIngressCap.assign(vms, vmCap);
    in.vmNicCap.assign(vms, 2.0 * vmCap);
    in.pathCap.assign(dcs * dcs, pathCap);
    return in;
}

/** Solver config with the congestion/oversubscription penalties off,
 *  for tests that check the pure weighted-sharing arithmetic. */
SolverConfig
pureSharing()
{
    SolverConfig cfg;
    cfg.vmConnAlpha = 0.0;
    cfg.oversubAlpha = 0.0;
    return cfg;
}

FlowSpec
flow(std::size_t srcVm, std::size_t dstVm, std::size_t srcDc,
     std::size_t dstDc, int conns, double weight, Mbps cap)
{
    FlowSpec f;
    f.srcVm = srcVm;
    f.dstVm = dstVm;
    f.srcDc = srcDc;
    f.dstDc = dstDc;
    f.connections = conns;
    f.weightPerConn = weight;
    f.capPerConn = cap;
    return f;
}

} // namespace

TEST(FlowSolver, SingleFlowSelfCapBound)
{
    const auto rates = solveRates(
        {flow(0, 1, 0, 1, 1, 1.0, 300.0)}, simpleInputs(2, 2));
    ASSERT_EQ(rates.size(), 1u);
    EXPECT_NEAR(rates[0].rate, 300.0, 1e-6);
    EXPECT_EQ(rates[0].bottleneck, Bottleneck::SelfCap);
}

TEST(FlowSolver, SingleFlowEgressBound)
{
    const auto rates =
        solveRates({flow(0, 1, 0, 1, 1, 1.0, 5000.0)},
                   simpleInputs(2, 2), pureSharing());
    EXPECT_NEAR(rates[0].rate, 1000.0, 1e-6);
    EXPECT_EQ(rates[0].bottleneck, Bottleneck::SrcVm);
}

TEST(FlowSolver, WeightedSharingSplitsProportionally)
{
    // Two flows from the same VM, weights 3:1, both unbounded by
    // their own caps -> 750 / 250 of the 1000 egress.
    const auto rates = solveRates(
        {flow(0, 1, 0, 1, 1, 3.0, 5000.0),
         flow(0, 2, 0, 2, 1, 1.0, 5000.0)},
        simpleInputs(3, 3), pureSharing());
    EXPECT_NEAR(rates[0].rate, 750.0, 1e-6);
    EXPECT_NEAR(rates[1].rate, 250.0, 1e-6);
}

TEST(FlowSolver, CappedFlowReleasesShareToOthers)
{
    // The heavy-weight flow is self-capped at 100; the other takes
    // the rest of the egress.
    const auto rates = solveRates(
        {flow(0, 1, 0, 1, 1, 10.0, 100.0),
         flow(0, 2, 0, 2, 1, 1.0, 5000.0)},
        simpleInputs(3, 3), pureSharing());
    EXPECT_NEAR(rates[0].rate, 100.0, 1e-6);
    EXPECT_NEAR(rates[1].rate, 900.0, 1e-6);
}

TEST(FlowSolver, TcLimitCapsPairAggregate)
{
    auto inputs = simpleInputs(2, 2);
    inputs.tcLimit.assign(4, 0.0);
    inputs.tcLimit[0 * 2 + 1] = 150.0;
    const auto rates = solveRates(
        {flow(0, 1, 0, 1, 4, 1.0, 500.0)}, inputs);
    EXPECT_NEAR(rates[0].rate, 150.0, 1e-6);
    EXPECT_EQ(rates[0].bottleneck, Bottleneck::TcLimit);
}

TEST(FlowSolver, NicTotalSharedAcrossDirections)
{
    // VM 0's NIC (2000) is shared by its outbound and inbound flows;
    // equal weights -> 1000 each even though each direction's WAN cap
    // alone would allow more.
    auto inputs = simpleInputs(3, 3, 1800.0, 1.0e6);
    inputs.vmNicCap.assign(3, 2000.0);
    const auto rates = solveRates(
        {flow(0, 1, 0, 1, 1, 1.0, 5000.0),
         flow(2, 0, 2, 0, 1, 1.0, 5000.0)},
        inputs, pureSharing());
    EXPECT_NEAR(rates[0].rate + rates[1].rate, 2000.0, 1e-6);
}

TEST(FlowSolver, BundleCapEfficiencyDecaysPastKnee)
{
    SolverConfig cfg;
    const Mbps at8 = bundleCap(8, 100.0, cfg);
    const Mbps at12 = bundleCap(12, 100.0, cfg);
    EXPECT_NEAR(at8, 800.0, 1e-9);
    EXPECT_LT(at12, 1200.0);
    // Degradation grows quadratically: eff(12) = 1/(1+0.05*16).
    EXPECT_NEAR(at12, 1200.0 / 1.8, 1e-6);
}

TEST(FlowSolver, EmptyProblemIsEmpty)
{
    EXPECT_TRUE(solveRates({}, simpleInputs(1, 1)).empty());
}

// ---- flow solver: properties over random meshes ------------------------------

class FlowSolverProperty : public ::testing::TestWithParam<int>
{};

TEST_P(FlowSolverProperty, ConservationAndFeasibility)
{
    Rng rng(1000 + GetParam());
    const std::size_t dcs = 2 + rng.uniformInt(0, 4);
    const std::size_t vms = dcs;
    auto inputs = simpleInputs(vms, dcs,
                               rng.uniform(500.0, 3000.0),
                               rng.uniform(800.0, 4000.0));

    std::vector<FlowSpec> flows;
    for (std::size_t i = 0; i < dcs; ++i) {
        for (std::size_t j = 0; j < dcs; ++j) {
            if (i == j || rng.bernoulli(0.3))
                continue;
            flows.push_back(flow(
                i, j, i, j, static_cast<int>(rng.uniformInt(1, 10)),
                rng.uniform(0.1, 10.0), rng.uniform(50.0, 2000.0)));
        }
    }
    const auto rates = solveRates(flows, inputs);
    ASSERT_EQ(rates.size(), flows.size());

    // Feasibility: rates non-negative, self-cap honored, resources
    // not oversubscribed (the conn/oversubscription penalties only
    // shrink capacities, so the nominal caps bound from above).
    SolverConfig cfg;
    std::vector<double> egress(vms, 0.0), ingress(vms, 0.0);
    for (std::size_t f = 0; f < flows.size(); ++f) {
        EXPECT_GE(rates[f].rate, 0.0);
        EXPECT_LE(rates[f].rate,
                  bundleCap(flows[f].connections,
                            flows[f].capPerConn, cfg) +
                      1e-6);
        egress[flows[f].srcVm] += rates[f].rate;
        ingress[flows[f].dstVm] += rates[f].rate;
    }
    for (std::size_t v = 0; v < vms; ++v) {
        EXPECT_LE(egress[v], inputs.vmEgressCap[v] + 1e-6);
        EXPECT_LE(ingress[v], inputs.vmIngressCap[v] + 1e-6);
        EXPECT_LE(egress[v] + ingress[v], inputs.vmNicCap[v] + 1e-6);
    }
}

TEST_P(FlowSolverProperty, AddingConnectionsNeverHurtsOwnPair)
{
    // Growing a bundle's connection count (within the knee) must not
    // reduce that bundle's allocated rate, all else equal.
    Rng rng(5000 + GetParam());
    auto inputs = simpleInputs(3, 3, 2000.0, 3000.0);
    std::vector<FlowSpec> flows = {
        flow(0, 1, 0, 1, 1, rng.uniform(0.5, 3.0), 400.0),
        flow(0, 2, 0, 2, 1, rng.uniform(0.5, 3.0), 400.0),
    };
    const auto before = solveRates(flows, inputs);
    for (int c = 2; c <= 8; ++c) {
        flows[0].connections = c;
        const auto after = solveRates(flows, inputs);
        EXPECT_GE(after[0].rate, before[0].rate - 1e-6);
    }
}

INSTANTIATE_TEST_SUITE_P(RandomMeshes, FlowSolverProperty,
                         ::testing::Range(0, 12));

// ---- network sim -------------------------------------------------------------

TEST(NetworkSim, FiniteTransferCompletesOnSchedule)
{
    NetworkSim sim(paperTopo(2), quiet(), 1);
    // East -> West single connection: ~1718 Mbps; 1 decimal GB.
    const auto id = sim.startTransfer(0, 1, 1.0e9, 1);
    const Seconds t = sim.runUntilAllComplete();
    EXPECT_NEAR(t, 8000.0 / 1718.8, 0.05);
    EXPECT_TRUE(sim.status(id).done);
    EXPECT_NEAR(sim.status(id).bytesMoved, 1.0e9, 10.0);
}

TEST(NetworkSim, CompletionsAreReported)
{
    NetworkSim sim(paperTopo(2), quiet(), 1);
    const auto id = sim.startTransfer(0, 1, 1.0e8, 2);
    sim.runUntilAllComplete();
    const auto recs = sim.drainCompletions();
    ASSERT_EQ(recs.size(), 1u);
    EXPECT_EQ(recs[0].id, id);
    EXPECT_TRUE(sim.drainCompletions().empty());
}

TEST(NetworkSim, MeasurementFlowsNeverComplete)
{
    NetworkSim sim(paperTopo(2), quiet(), 1);
    sim.startMeasurement(0, 1, 1);
    sim.advanceBy(30.0);
    EXPECT_TRUE(sim.allTransfersDone()); // no *finite* transfers
    EXPECT_EQ(sim.activeTransferCount(), 1u);
    EXPECT_TRUE(sim.drainCompletions().empty());
}

TEST(NetworkSim, PairBytesAccumulate)
{
    NetworkSim sim(paperTopo(2), quiet(), 1);
    sim.startMeasurement(0, 1, 1);
    sim.advanceBy(10.0);
    const Bytes moved = sim.pairBytes(0, 1);
    // ~1718.8 Mbps for 10 s ~= 2.15 decimal GB.
    EXPECT_NEAR(moved, 1718.8e6 / 8.0 * 10.0, 2.0e7);
    EXPECT_DOUBLE_EQ(sim.pairBytes(1, 0), 0.0);
}

TEST(NetworkSim, SetConnectionsChangesRate)
{
    NetworkSim sim(paperTopo(8), quiet(), 1);
    // Weak pair: East -> AP SE.
    const auto id = sim.startMeasurement(0, 3, 1);
    sim.advanceBy(1.0);
    const Mbps single = sim.transferRate(id);
    sim.setConnections(id, 8);
    sim.advanceBy(1.0);
    const Mbps eight = sim.transferRate(id);
    EXPECT_GT(eight, 5.0 * single);
}

TEST(NetworkSim, TcLimitIsAppliedAndCleared)
{
    NetworkSim sim(paperTopo(2), quiet(), 1);
    const auto id = sim.startMeasurement(0, 1, 4);
    sim.setTcLimit(0, 1, 200.0);
    sim.advanceBy(1.0);
    EXPECT_NEAR(sim.transferRate(id), 200.0, 1.0);
    sim.setTcLimit(0, 1, 0.0);
    sim.advanceBy(1.0);
    EXPECT_GT(sim.transferRate(id), 1000.0);
}

TEST(NetworkSim, StopTransferRemovesIt)
{
    NetworkSim sim(paperTopo(2), quiet(), 1);
    const auto id = sim.startTransfer(0, 1, 1.0e12, 1);
    sim.advanceBy(1.0);
    sim.stopTransfer(id);
    EXPECT_TRUE(sim.allTransfersDone());
    EXPECT_TRUE(sim.status(id).done);
}

TEST(NetworkSim, InvalidArgumentsFail)
{
    NetworkSim sim(paperTopo(2), quiet(), 1);
    EXPECT_THROW(sim.startTransfer(0, 0, 100.0, 1), FatalError);
    EXPECT_THROW(sim.startTransfer(0, 1, 0.0, 1), FatalError);
    EXPECT_THROW(sim.startTransfer(0, 1, 100.0, 0), FatalError);
    EXPECT_THROW(sim.startMeasurement(0, 99, 1), FatalError);
    EXPECT_THROW(sim.advanceBy(-1.0), FatalError);
}

TEST(NetworkSim, DeterministicAcrossRuns)
{
    auto run = [] {
        NetworkSim sim(paperTopo(4), NetworkSimConfig{}, 77);
        sim.startTransfer(0, 3, 5.0e8, 3);
        sim.startTransfer(1, 2, 5.0e8, 2);
        return sim.runUntilAllComplete();
    };
    EXPECT_DOUBLE_EQ(run(), run());
}

TEST(NetworkSim, ScenarioCapFactorScalesEffectiveCapacity)
{
    NetworkSim sim(paperTopo(2), quiet(), 1);
    const Mbps nominal = sim.effectivePathCap(0, 1);
    sim.setScenarioCapFactor(0, 1, 0.25);
    EXPECT_NEAR(sim.effectivePathCap(0, 1), 0.25 * nominal, 1e-9);
    // The reverse direction is untouched.
    EXPECT_NEAR(sim.effectivePathCap(1, 0), nominal, 1e-9);
    sim.clearScenarioFactors();
    EXPECT_NEAR(sim.effectivePathCap(0, 1), nominal, 1e-9);
}

TEST(NetworkSim, ScenarioOutageStallsAndRecoveryReleases)
{
    NetworkSim sim(paperTopo(2), quiet(), 1);
    const auto id = sim.startMeasurement(0, 1, 8);
    sim.advanceBy(1.0);
    const Mbps before = sim.transferRate(id);
    EXPECT_GT(before, 500.0);
    sim.setScenarioCapFactor(0, 1, 0.01);
    sim.advanceBy(1.0);
    EXPECT_LT(sim.transferRate(id), 0.05 * before);
    sim.setScenarioCapFactor(0, 1, 1.0);
    sim.advanceBy(1.0);
    EXPECT_NEAR(sim.transferRate(id), before, 1e-6);
}

TEST(NetworkSim, ScenarioFactorsValidated)
{
    NetworkSim sim(paperTopo(2), quiet(), 1);
    EXPECT_THROW(sim.setScenarioCapFactor(0, 1, -0.5), FatalError);
    EXPECT_THROW(
        sim.setScenarioCapFactor(0, 1,
                                 std::numeric_limits<double>::
                                     quiet_NaN()),
        FatalError);
    EXPECT_THROW(sim.setScenarioRttFactor(0, 1, 0.0), FatalError);
    EXPECT_DOUBLE_EQ(sim.scenarioCapFactor(0, 1), 1.0);
}

TEST(NetworkSim, RetransScoreRisesUnderContention)
{
    NetworkSim sim(paperTopo(8), quiet(), 1);
    // Load every pair; the weak pairs' demand goes unserved.
    const auto &topo = sim.topology();
    for (DcId i = 0; i < 8; ++i)
        for (DcId j = 0; j < 8; ++j)
            if (i != j)
                sim.startMeasurement(topo.dc(i).vms.front(),
                                     topo.dc(j).vms.front(), 4);
    sim.advanceBy(1.0);
    EXPECT_GT(sim.pairRetransScore(7, 3), 0.05);
}

TEST(NetworkSim, FlatSolverInputsMatchReferenceBitExact)
{
    // The flat per-pair composition path (persistent PairIndex-keyed
    // arrays) must produce bit-identical rates, progress, and
    // completion times to the legacy map-keyed input build — the
    // golden 8-DC mesh drives both through every feature that feeds
    // the solver: groups, share caps, scenario factors, tc limits,
    // connection changes, and OU fluctuation.
    const auto topo = paperTopo(8);
    NetworkSimConfig flatCfg; // fluctuation ON: wobbled caps too
    NetworkSimConfig refCfg;
    refCfg.referenceSolverInputs = true;

    NetworkSim flat(topo, flatCfg, 99);
    NetworkSim ref(topo, refCfg, 99);

    std::vector<TransferId> flatIds, refIds;
    auto driveBoth = [&](auto &&fn) {
        fn(flat, flatIds);
        fn(ref, refIds);
    };

    driveBoth([&](NetworkSim &sim, std::vector<TransferId> &ids) {
        const auto &t = sim.topology();
        for (DcId i = 0; i < 8; ++i)
            for (DcId j = 0; j < 8; ++j)
                if (i != j)
                    ids.push_back(sim.startTransfer(
                        t.dc(i).vms.front(), t.dc(j).vms.front(),
                        units::megabytes(40.0 + 3.0 * i + j),
                        1 + static_cast<int>((i + j) % 4),
                        (i + j) % 3));
        ids.push_back(sim.startMeasurement(t.dc(0).vms.front(),
                                           t.dc(7).vms.front(), 2));
        sim.setGroupWeight(1, 2.5);
        sim.setGroupPairCap(1, 0, 1, 300.0);
        sim.setGroupPairCap(2, 3, 4, 150.0);
        sim.setScenarioCapFactor(2, 3, 0.4);
        sim.setScenarioRttFactor(1, 2, 1.5);
        sim.setTcLimit(0, 2, 500.0);
        sim.advanceBy(0.7);
        sim.advanceBy(1.3);
    });

    ASSERT_EQ(flatIds.size(), refIds.size());
    auto expectIdenticalState = [&]() {
        for (std::size_t k = 0; k < flatIds.size(); ++k) {
            const auto a = flat.status(flatIds[k]);
            const auto b = ref.status(refIds[k]);
            EXPECT_EQ(a.currentRate, b.currentRate) << "flow " << k;
            EXPECT_EQ(a.bytesMoved, b.bytesMoved) << "flow " << k;
            EXPECT_EQ(a.bottleneck, b.bottleneck) << "flow " << k;
        }
        for (DcId i = 0; i < 8; ++i)
            for (DcId j = 0; j < 8; ++j)
                EXPECT_EQ(flat.pairRate(i, j), ref.pairRate(i, j))
                    << "pair " << i << "->" << j;
    };
    expectIdenticalState();

    // Mutate every dirty-tracking path mid-flight and recheck.
    driveBoth([&](NetworkSim &sim, std::vector<TransferId> &ids) {
        sim.setConnections(ids[3], 6);
        sim.stopTransfer(ids[10]);
        sim.setGroupPairCap(1, 0, 1, 0.0); // clear a cap
        sim.setGroupWeight(2, 0.5);
        sim.setScenarioCapFactor(2, 3, 1.0);
        sim.setTcLimit(0, 2, 0.0);
        sim.clearGroupAllocations(2);
        sim.advanceBy(2.0);
    });
    expectIdenticalState();

    const Seconds doneFlat = flat.runUntilAllComplete(600.0);
    const Seconds doneRef = ref.runUntilAllComplete(600.0);
    EXPECT_EQ(doneFlat, doneRef);
    EXPECT_TRUE(flat.allTransfersDone());
}
