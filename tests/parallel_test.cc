/**
 * @file
 * Determinism under concurrency: the thread pool itself, splitmix64
 * seed derivation, parallel-vs-sequential Random Forest training, and
 * parallel-vs-sequential experiment trials. Everything the ThreadPool
 * touches must be bit-identical to the sequential path — these tests
 * are the contract.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "common/rng.hh"
#include "common/thread_pool.hh"
#include "core/bandwidth_analyzer.hh"
#include "core/wanify.hh"
#include "experiments/runner.hh"
#include "experiments/testbed.hh"
#include "gda/engine.hh"
#include "ml/dataset.hh"
#include "ml/random_forest.hh"
#include "sched/locality.hh"
#include "storage/hdfs.hh"
#include "workloads/terasort.hh"

using namespace wanify;
using namespace wanify::experiments;
using namespace wanify::ml;

namespace {

/** y = 3x0 + noise on x1 (irrelevant feature). */
Dataset
linearData(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    Dataset data(2, 1);
    for (std::size_t i = 0; i < n; ++i) {
        const double x0 = rng.uniform(0.0, 10.0);
        const double x1 = rng.uniform(0.0, 10.0);
        data.add({x0, x1}, 3.0 * x0 + rng.normal(0.0, 0.05));
    }
    return data;
}

/** A pure function of the seed — trivially thread-safe. */
gda::QueryResult
syntheticTrial(std::uint64_t seed)
{
    Rng rng(seed);
    gda::QueryResult r;
    r.latency = rng.uniform(100.0, 500.0);
    r.cost.compute = rng.uniform(1.0, 5.0);
    r.cost.network = rng.uniform(0.1, 2.0);
    r.minObservedBw = rng.uniform(50.0, 900.0);
    return r;
}

} // namespace

TEST(ThreadPool, ParallelForCoversEveryIndexOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(hits.size(),
                     [&](std::size_t i) { hits[i].fetch_add(1); });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, OneThreadPoolRunsSequentiallyInOrder)
{
    // ThreadPool(1) spawns no workers: the caller executes every
    // index itself, strictly in order.
    ThreadPool pool(1);
    EXPECT_EQ(pool.threadCount(), 1u);
    std::vector<std::size_t> order;
    pool.parallelFor(16, [&](std::size_t i) { order.push_back(i); });
    ASSERT_EQ(order.size(), 16u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ThreadPool, ParallelForZeroAndOne)
{
    ThreadPool pool(2);
    pool.parallelFor(0, [](std::size_t) { FAIL(); });
    std::atomic<int> calls{0};
    pool.parallelFor(1, [&](std::size_t i) {
        EXPECT_EQ(i, 0u);
        calls.fetch_add(1);
    });
    EXPECT_EQ(calls.load(), 1);
}

TEST(ThreadPool, PropagatesFirstException)
{
    ThreadPool pool(4);
    EXPECT_THROW(pool.parallelFor(64,
                                  [](std::size_t i) {
                                      if (i % 7 == 3)
                                          throw std::runtime_error(
                                              "boom");
                                  }),
                 std::runtime_error);
    // The pool survives a failed batch.
    std::atomic<int> calls{0};
    pool.parallelFor(8, [&](std::size_t) { calls.fetch_add(1); });
    EXPECT_EQ(calls.load(), 8);
}

TEST(ThreadPool, NestedParallelForCompletes)
{
    // A worker calling parallelFor again must not deadlock: the
    // nested caller drains its own batch.
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(4, [&](std::size_t) {
        ThreadPool::global().parallelFor(
            8, [&](std::size_t) { calls.fetch_add(1); });
    });
    EXPECT_EQ(calls.load(), 32);
}

TEST(ThreadPool, ReentrantSubmissionOnSamedPoolCoversEveryIndex)
{
    // The serve loop's shape: work submitted to the SAME pool from
    // inside one of its own batches (not via a second pool). Every
    // (outer, inner) pair must run exactly once, with no deadlock
    // even though outer tasks outnumber the threads.
    ThreadPool pool(3);
    constexpr std::size_t kOuter = 8, kInner = 8;
    std::vector<std::atomic<int>> hits(kOuter * kInner);
    for (auto &h : hits)
        h.store(0);
    pool.parallelFor(kOuter, [&](std::size_t o) {
        pool.parallelFor(kInner, [&](std::size_t i) {
            hits[o * kInner + i].fetch_add(1);
        });
    });
    for (const auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, DeeplyNestedSubmissionCompletes)
{
    // Three levels of re-entrant submission on one pool: each level's
    // caller must drain its own batch regardless of which thread runs
    // it, so depth cannot exhaust the workers.
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(3, [&](std::size_t) {
        pool.parallelFor(3, [&](std::size_t) {
            pool.parallelFor(3,
                             [&](std::size_t) { calls.fetch_add(1); });
        });
    });
    EXPECT_EQ(calls.load(), 27);
}

TEST(ThreadPool, NestedExceptionPropagatesAndPoolSurvives)
{
    ThreadPool pool(2);
    // An inner batch throws on a worker thread; the inner parallelFor
    // rethrows it inside the outer task, and the outer parallelFor
    // surfaces it to the original caller.
    EXPECT_THROW(
        pool.parallelFor(4,
                         [&](std::size_t o) {
                             pool.parallelFor(4, [&](std::size_t i) {
                                 if (o == 1 && i == 2)
                                     throw std::runtime_error("inner");
                             });
                         }),
        std::runtime_error);
    // Both nesting levels drained: the pool accepts new batches.
    std::atomic<int> calls{0};
    pool.parallelFor(4, [&](std::size_t) {
        pool.parallelFor(4, [&](std::size_t) { calls.fetch_add(1); });
    });
    EXPECT_EQ(calls.load(), 16);
}

TEST(ThreadPool, SaturatedNestedSubmissionMakesProgress)
{
    // Far more in-flight nested batches than threads: progress relies
    // on callers executing work items themselves, never on a free
    // worker existing.
    ThreadPool pool(2);
    std::atomic<int> calls{0};
    pool.parallelFor(32, [&](std::size_t) {
        pool.parallelFor(16, [&](std::size_t) { calls.fetch_add(1); });
    });
    EXPECT_EQ(calls.load(), 512);
}

TEST(Rng, DeriveSeedsAvoidsAdjacentBaseCollisions)
{
    // Regression for the old `base + 7919 * t` scheme, where e.g.
    // bases 1000 and 8919 shared trial seeds. Derived seeds from a
    // window of adjacent bases must all be distinct.
    std::set<std::uint64_t> seen;
    std::size_t total = 0;
    for (std::uint64_t base = 1000; base < 1032; ++base) {
        for (std::uint64_t s : deriveSeeds(base, 8)) {
            seen.insert(s);
            ++total;
        }
    }
    EXPECT_EQ(seen.size(), total);
}

TEST(Rng, DeriveSeedsIsStable)
{
    const auto a = deriveSeeds(42, 5);
    const auto b = deriveSeeds(42, 5);
    EXPECT_EQ(a, b);
    // A longer derivation shares the prefix: warm starts and repeated
    // runs see the same per-unit seeds.
    const auto c = deriveSeeds(42, 9);
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], c[i]);
}

TEST(ParallelForest, MatchesSequentialBitForBit)
{
    const auto data = linearData(400, 7);

    ForestConfig seqCfg;
    seqCfg.nEstimators = 24;
    seqCfg.nThreads = 1; // sequential reference
    RandomForestRegressor seq(seqCfg);
    seq.fit(data, 99);

    ForestConfig parCfg = seqCfg;
    parCfg.nThreads = 0; // process-wide pool
    RandomForestRegressor par(parCfg);
    par.fit(data, 99);

    // nThreads = 2 is the smallest genuinely-parallel cap (one
    // worker plus the caller) — the boundary the capped path must
    // get right.
    ForestConfig cappedCfg = seqCfg;
    cappedCfg.nThreads = 2;
    RandomForestRegressor capped(cappedCfg);
    capped.fit(data, 99);

    ASSERT_EQ(seq.treeCount(), par.treeCount());
    ASSERT_EQ(seq.treeCount(), capped.treeCount());
    EXPECT_EQ(seq.oobR2(), par.oobR2());
    EXPECT_EQ(seq.oobR2(), capped.oobR2());
    for (double x = 0.0; x <= 10.0; x += 0.25) {
        EXPECT_EQ(seq.predictScalar({x, 5.0}),
                  par.predictScalar({x, 5.0}));
        EXPECT_EQ(seq.predictScalar({x, 5.0}),
                  capped.predictScalar({x, 5.0}));
    }
    const auto seqImp = seq.featureImportances();
    const auto parImp = par.featureImportances();
    ASSERT_EQ(seqImp.size(), parImp.size());
    for (std::size_t f = 0; f < seqImp.size(); ++f)
        EXPECT_EQ(seqImp[f], parImp[f]);
}

TEST(ParallelForest, WarmStartMatchesSequential)
{
    const auto data = linearData(300, 11);

    ForestConfig seqCfg;
    seqCfg.nEstimators = 10;
    seqCfg.nThreads = 1;
    RandomForestRegressor seq(seqCfg);
    seq.fit(data, 51);
    seq.warmStart(data, 6, 52);

    ForestConfig parCfg = seqCfg;
    parCfg.nThreads = 0;
    RandomForestRegressor par(parCfg);
    par.fit(data, 51);
    par.warmStart(data, 6, 52);

    ASSERT_EQ(seq.treeCount(), 16u);
    ASSERT_EQ(par.treeCount(), 16u);
    EXPECT_EQ(seq.oobR2(), par.oobR2());
    for (double x = 0.5; x <= 9.5; x += 0.5) {
        EXPECT_EQ(seq.predictScalar({x, 1.0}),
                  par.predictScalar({x, 1.0}));
    }
}

TEST(ParallelTrials, AggregateMatchesSequentialBitForBit)
{
    const auto seq =
        runTrials(syntheticTrial, 16, 1000, Execution::Sequential);
    const auto par =
        runTrials(syntheticTrial, 16, 1000, Execution::Parallel);

    EXPECT_EQ(seq.trials, par.trials);
    EXPECT_EQ(seq.meanLatency, par.meanLatency);
    EXPECT_EQ(seq.seLatency, par.seLatency);
    EXPECT_EQ(seq.meanCost, par.meanCost);
    EXPECT_EQ(seq.seCost, par.seCost);
    EXPECT_EQ(seq.meanMinBw, par.meanMinBw);
    EXPECT_EQ(seq.seMinBw, par.seMinBw);
}

TEST(ParallelTrials, RealEngineTrialsSharingOneWanifyAreDeterministic)
{
    // End-to-end variant of the contract: full engine runs sharing a
    // single const Wanify facade (predictor + planner + deployment)
    // across concurrent trials must aggregate identically to the
    // sequential path.
    const auto topo = workerCluster(4);
    const auto simCfg = defaultSimConfig();
    const auto job = workloads::teraSort(2.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    const auto input = hdfs.distribution();
    sched::LocalityScheduler locality;

    // A deliberately small training run keeps the test fast.
    core::AnalyzerConfig acfg;
    acfg.clusterSizes = {4};
    acfg.meshesPerSize = 4;
    acfg.sim = simCfg;
    core::BandwidthAnalyzer analyzer(acfg);
    ml::ForestConfig fcfg;
    fcfg.nEstimators = 10;
    auto pred = std::make_shared<core::RuntimeBwPredictor>(fcfg);
    pred->train(analyzer.collect(777), 778);

    core::Wanify wanify;
    wanify.setPredictor(std::move(pred));

    auto trial = [&](std::uint64_t seed) {
        gda::Engine engine(topo, simCfg, seed);
        gda::RunOptions opts;
        opts.schedulerBw = Matrix<Mbps>::square(4, 500.0);
        opts.wanify = &wanify;
        return engine.run(job, input, locality, opts);
    };

    const auto seq = runTrials(trial, 4, 2024, Execution::Sequential);
    const auto par = runTrials(trial, 4, 2024, Execution::Parallel);
    EXPECT_EQ(seq.meanLatency, par.meanLatency);
    EXPECT_EQ(seq.seLatency, par.seLatency);
    EXPECT_EQ(seq.meanCost, par.meanCost);
    EXPECT_EQ(seq.meanMinBw, par.meanMinBw);
    EXPECT_EQ(seq.seMinBw, par.seMinBw);
}

TEST(ParallelTrials, SeedsNoLongerCollideAcrossAdjacentBases)
{
    // Old scheme: runTrials(fn, 5, 1000) and runTrials(fn, 5, 8919)
    // shared seeds. Record the seeds each base hands the closure.
    std::set<std::uint64_t> a, b;
    std::mutex mu;
    auto record = [&mu](std::set<std::uint64_t> &dst,
                        std::uint64_t seed) {
        std::lock_guard<std::mutex> lock(mu);
        dst.insert(seed);
        return gda::QueryResult{};
    };
    runTrials([&](std::uint64_t s) { return record(a, s); }, 5, 1000);
    runTrials([&](std::uint64_t s) { return record(b, s); }, 5, 8919);
    for (std::uint64_t s : a)
        EXPECT_EQ(b.count(s), 0u);
}

TEST(Runner, FormatDurationHandlesEdgeCases)
{
    EXPECT_EQ(formatDuration(-3.0), "0.0s");
    EXPECT_EQ(formatDuration(0.0), "0.0s");
    EXPECT_EQ(formatDuration(12.34), "12.3s");
    EXPECT_EQ(formatDuration(59.99), "60.0s");
    EXPECT_EQ(formatDuration(60.0), "1m 00s");
    EXPECT_EQ(formatDuration(125.7), "2m 05s");
    EXPECT_EQ(formatDuration(3600.0), "1h 00m 00s");
    EXPECT_EQ(formatDuration(7387.0), "2h 03m 07s");
    EXPECT_EQ(formatDuration(std::nan("")), "0.0s");
    EXPECT_EQ(formatDuration(-INFINITY), "0.0s");
    // +inf clamps to a finite cap instead of a UB integer cast.
    const auto capped = formatDuration(INFINITY);
    EXPECT_EQ(capped, formatDuration(1.0e15));
    EXPECT_EQ(capped.back(), 's');
}
