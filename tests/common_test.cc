/**
 * @file
 * Unit tests for the common foundation: units, RNG, matrix, stats,
 * geo, table, and error primitives.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/error.hh"
#include "common/geo.hh"
#include "common/matrix.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

using namespace wanify;

// ---- units -----------------------------------------------------------------

TEST(Units, TransferTimeBasics)
{
    // 1 decimal GB at 800 Mbps = 8 Gbit / 0.8 Gbps = 10 s.
    EXPECT_NEAR(units::transferTime(1.0e9, 800.0), 10.0, 1e-9);
    EXPECT_DOUBLE_EQ(units::transferTime(0.0, 100.0), 0.0);
    EXPECT_TRUE(std::isinf(units::transferTime(1.0, 0.0)));
}

TEST(Units, RateForInvertsTransferTime)
{
    const Bytes size = units::gigabytes(2.5);
    const Seconds t = units::transferTime(size, 345.0);
    EXPECT_NEAR(units::rateFor(size, t), 345.0, 1e-9);
}

TEST(Units, BytesAtRateRoundTrip)
{
    const Bytes moved = units::bytesAtRate(200.0, 4.0);
    // 200 Mbps * 4 s = 800 Mbit = 100 MB (decimal).
    EXPECT_NEAR(moved, 100.0e6, 1.0);
}

TEST(Units, MilesConversion)
{
    EXPECT_NEAR(units::toMiles(100.0), 62.1371, 1e-3);
}

// ---- error -----------------------------------------------------------------

TEST(Error, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
    EXPECT_THROW(fatalIf(true, "x"), FatalError);
    EXPECT_NO_THROW(fatalIf(false, "x"));
}

TEST(Error, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("bug"), PanicError);
    EXPECT_THROW(panicIf(true, "x"), PanicError);
    EXPECT_NO_THROW(panicIf(false, "x"));
}

// ---- rng -------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(12345), b(12345);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformIntCoversRangeInclusive)
{
    Rng rng(11);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const auto v = rng.uniformInt(3, 7);
        EXPECT_GE(v, 3);
        EXPECT_LE(v, 7);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsRoughlyCorrect)
{
    Rng rng(21);
    stats::RunningStats acc;
    for (int i = 0; i < 20000; ++i)
        acc.push(rng.normal(10.0, 2.0));
    EXPECT_NEAR(acc.mean(), 10.0, 0.1);
    EXPECT_NEAR(acc.stddev(), 2.0, 0.1);
}

TEST(Rng, SampleWithoutReplacementIsDistinct)
{
    Rng rng(5);
    const auto idx = rng.sampleWithoutReplacement(50, 20);
    std::set<std::size_t> unique(idx.begin(), idx.end());
    EXPECT_EQ(unique.size(), 20u);
    for (std::size_t i : idx)
        EXPECT_LT(i, 50u);
}

TEST(Rng, SampleWithReplacementInRange)
{
    Rng rng(5);
    for (std::size_t i : rng.sampleWithReplacement(10, 100))
        EXPECT_LT(i, 10u);
}

TEST(Rng, SplitProducesIndependentStream)
{
    Rng parent(99);
    Rng child = parent.split();
    // The child's next values should not track the parent's.
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += parent.next() == child.next() ? 1 : 0;
    EXPECT_LT(equal, 4);
}

// ---- matrix ----------------------------------------------------------------

TEST(Matrix, InitializerListAndAccess)
{
    Matrix<int> m{{1, 2}, {3, 4}};
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 2u);
    EXPECT_EQ(m.at(0, 1), 2);
    EXPECT_EQ(m.at(1, 0), 3);
}

TEST(Matrix, OutOfRangeAccessPanics)
{
    Matrix<int> m = Matrix<int>::square(2, 0);
    EXPECT_THROW(m.at(2, 0), PanicError);
    EXPECT_THROW(m.at(0, 2), PanicError);
}

TEST(Matrix, OffDiagonalStats)
{
    Matrix<double> m{{99.0, 2.0, 3.0},
                     {4.0, 99.0, 6.0},
                     {8.0, 10.0, 99.0}};
    EXPECT_DOUBLE_EQ(m.offDiagonalMin(), 2.0);
    EXPECT_DOUBLE_EQ(m.offDiagonalMax(), 10.0);
    EXPECT_NEAR(m.offDiagonalMean(), (2 + 3 + 4 + 6 + 8 + 10) / 6.0,
                1e-12);
}

TEST(Matrix, RowMaxAndSum)
{
    Matrix<int> m{{1, 5, 2}, {7, 0, 3}, {2, 2, 2}};
    EXPECT_EQ(m.rowMax(0), 5);
    EXPECT_EQ(m.rowMax(1), 7);
    EXPECT_EQ(m.sum(), 24);
}

TEST(Matrix, RaggedInitializerFails)
{
    auto make = [] { Matrix<int> m{{1, 2}, {3}}; };
    EXPECT_THROW(make(), FatalError);
}

// ---- stats -----------------------------------------------------------------

TEST(Stats, MeanVarianceStddev)
{
    const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0,
                                    7.0, 9.0};
    EXPECT_DOUBLE_EQ(stats::mean(xs), 5.0);
    EXPECT_NEAR(stats::variance(xs), 32.0 / 7.0, 1e-12);
}

TEST(Stats, PearsonPerfectCorrelation)
{
    const std::vector<double> xs = {1, 2, 3, 4, 5};
    const std::vector<double> ys = {2, 4, 6, 8, 10};
    EXPECT_NEAR(stats::pearson(xs, ys), 1.0, 1e-12);
    std::vector<double> neg = {10, 8, 6, 4, 2};
    EXPECT_NEAR(stats::pearson(xs, neg), -1.0, 1e-12);
}

TEST(Stats, PearsonZeroVarianceIsZero)
{
    const std::vector<double> xs = {1, 1, 1};
    const std::vector<double> ys = {2, 4, 6};
    EXPECT_DOUBLE_EQ(stats::pearson(xs, ys), 0.0);
}

TEST(Stats, PercentileInterpolates)
{
    std::vector<double> xs = {10, 20, 30, 40};
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 0), 10.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 100), 40.0);
    EXPECT_DOUBLE_EQ(stats::percentile(xs, 50), 25.0);
}

TEST(Stats, RunningStatsMatchesBatch)
{
    const std::vector<double> xs = {3.1, -2.0, 7.7, 0.4, 12.0};
    stats::RunningStats acc;
    for (double x : xs)
        acc.push(x);
    EXPECT_NEAR(acc.mean(), stats::mean(xs), 1e-12);
    EXPECT_NEAR(acc.variance(), stats::variance(xs), 1e-12);
    EXPECT_DOUBLE_EQ(acc.min(), -2.0);
    EXPECT_DOUBLE_EQ(acc.max(), 12.0);
}

// ---- geo -------------------------------------------------------------------

TEST(Geo, HaversineKnownDistances)
{
    // New York <-> London ~ 5570 km.
    const GeoPoint nyc{40.71, -74.01};
    const GeoPoint london{51.51, -0.13};
    EXPECT_NEAR(geo::haversineKm(nyc, london), 5570.0, 60.0);
    EXPECT_DOUBLE_EQ(geo::haversineKm(nyc, nyc), 0.0);
}

TEST(Geo, HaversineSymmetry)
{
    const GeoPoint a{38.95, -77.45};
    const GeoPoint b{1.35, 103.82};
    EXPECT_NEAR(geo::haversineKm(a, b), geo::haversineKm(b, a), 1e-9);
}

// ---- table -----------------------------------------------------------------

TEST(Table, RendersAlignedCells)
{
    Table t("Title");
    t.setHeader({"a", "bb"});
    t.addRow({"1", "2"});
    const std::string s = t.str();
    EXPECT_NE(s.find("Title"), std::string::npos);
    EXPECT_NE(s.find("| a "), std::string::npos);
    EXPECT_NE(s.find("| 1 "), std::string::npos);
}

TEST(Table, ColumnCountMismatchFails)
{
    Table t;
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
}

TEST(Table, NumberFormatting)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::pct(0.125, 1), "12.5%");
}
