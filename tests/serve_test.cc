/**
 * @file
 * The serve layer's contract: flow-group hooks in the shared
 * simulator (weights, per-(group, pair) share caps, telemetry), the
 * cross-query BandwidthAllocator's weighted water-fill, the
 * share-aware fraction search (StageContext::wanShare), and the
 * resident Service loop — determinism, admission control, the
 * per-query guard, straggler re-dispatch, policy effects, and online
 * retrain publication.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "common/error.hh"
#include "common/rng.hh"
#include "experiments/testbed.hh"
#include "gda/engine.hh"
#include "gda/scheduler.hh"
#include "ml/dataset.hh"
#include "monitor/features.hh"
#include "net/network_sim.hh"
#include "serve/allocator.hh"
#include "serve/service.hh"
#include "serve/workload.hh"
#include "workloads/tpcds.hh"

using namespace wanify;

namespace {

net::VmId
endpoint(const net::Topology &topo, net::DcId dc)
{
    return topo.dc(dc).vms.front();
}

/** Two-DC sim with no fluctuation: rate changes are policy-caused. */
net::NetworkSim
quietSim(std::size_t dcs, std::uint64_t seed = 5)
{
    return net::NetworkSim(experiments::workerCluster(dcs),
                           experiments::quietSimConfig(), seed);
}

/** A single-stage scan/aggregate query with input wholly at one DC. */
serve::QuerySpec
smallQuery(std::size_t i, std::size_t srcDc, std::size_t dcCount,
           Seconds arrival = 0.0, double weight = 1.0)
{
    serve::QuerySpec q;
    q.name = "t" + std::to_string(i);
    gda::StageSpec stage;
    stage.name = "scan-agg";
    stage.selectivity = 0.05;
    stage.workPerMb = 0.05;
    q.job.name = "small";
    q.job.stages.push_back(stage);
    q.job.inputBytes = 1.0e9;
    q.inputByDc.assign(dcCount, 0.0);
    q.inputByDc[srcDc] = q.job.inputBytes;
    q.arrival = arrival;
    q.weight = weight;
    return q;
}

/** An identical multi-DC analytics query that must shuffle. */
serve::QuerySpec
wanQuery(std::size_t i, std::size_t dcCount, double weight = 1.0)
{
    serve::QuerySpec q;
    q.name = "w" + std::to_string(i);
    q.job = workloads::tpcDsQuery(workloads::TpcDsQuery::Q95, 1.0);
    q.weight = weight;
    std::vector<double> frac(dcCount, 0.0);
    double sum = 0.0;
    for (std::size_t d = 0; d < dcCount; ++d) {
        frac[d] = std::pow(0.6, static_cast<double>(d));
        sum += frac[d];
    }
    q.inputByDc.assign(dcCount, 0.0);
    for (std::size_t d = 0; d < dcCount; ++d)
        q.inputByDc[d] = q.job.inputBytes * frac[d] / sum;
    return q;
}

/**
 * A Wanify facade with a small trained forest (production feature
 * shape, toy size) so Service planning exercises the model +
 * connection-planning path without an analyzer campaign.
 */
std::unique_ptr<core::Wanify>
tinyWanify(std::uint64_t seed = 404)
{
    Rng rng(seed);
    ml::Dataset data(monitor::kFeatureCount, 1);
    for (std::size_t s = 0; s < 400; ++s) {
        const double n = 2.0 + rng.uniformInt(0, 6);
        const double snap = rng.uniform(20.0, 2000.0);
        const double mem = rng.uniform(0.1, 0.9);
        const double cpu = rng.uniform(0.1, 0.9);
        const double retrans = rng.uniform(0.0, 0.5);
        const double dist = rng.uniform(100.0, 11000.0);
        const double target = snap * (1.1 - 0.3 * retrans) -
                              0.01 * dist + 40.0 * mem;
        data.add({n, snap, mem, cpu, retrans, dist}, target);
    }
    ml::ForestConfig fcfg;
    fcfg.nEstimators = 10;
    auto pred = std::make_shared<core::RuntimeBwPredictor>(fcfg);
    pred->train(data, seed ^ 0x9e3779b97f4a7c15ULL);
    auto w = std::make_unique<core::Wanify>();
    w->setPredictor(std::move(pred));
    return w;
}

} // namespace

// --- flow-group hooks in the shared simulator ---------------------------

TEST(FlowGroups, GroupWeightBiasesSharedBottleneckShares)
{
    auto sim = quietSim(2);
    const net::VmId a = endpoint(sim.topology(), 0);
    const net::VmId b = endpoint(sim.topology(), 1);

    // Two equal bundles on the same pair from the same endpoints:
    // without weights they split the shared bottleneck evenly.
    sim.startTransfer(a, b, 5.0e9, 8, 1);
    sim.startTransfer(a, b, 5.0e9, 8, 2);
    sim.advanceBy(0.01);
    const Mbps even1 = sim.groupRate(1);
    const Mbps even2 = sim.groupRate(2);
    ASSERT_GT(even1, 0.0);
    EXPECT_NEAR(even1 / even2, 1.0, 0.01);

    // A 3x weight on group 1 biases the max-min filling toward it.
    sim.setGroupWeight(1, 3.0);
    sim.advanceBy(0.01);
    const Mbps biased1 = sim.groupRate(1);
    const Mbps biased2 = sim.groupRate(2);
    EXPECT_GT(biased1, 1.9 * biased2);
    EXPECT_LE(biased1 / biased2, 4.0);

    // Total throughput is conserved: bias redistributes, not creates.
    EXPECT_NEAR(biased1 + biased2, even1 + even2,
                0.05 * (even1 + even2));
}

TEST(FlowGroups, GroupPairCapBindsAggregateAndClears)
{
    auto sim = quietSim(2);
    const net::VmId a = endpoint(sim.topology(), 0);
    const net::VmId b = endpoint(sim.topology(), 1);
    sim.startTransfer(a, b, 5.0e9, 8, 1);
    sim.startTransfer(a, b, 5.0e9, 8, 1); // same group: shares the cap
    sim.startTransfer(a, b, 5.0e9, 8, 2);
    sim.advanceBy(0.01);
    const Mbps uncapped = sim.groupRate(1);

    sim.setGroupPairCap(1, 0, 1, 200.0);
    sim.advanceBy(0.01);
    EXPECT_LE(sim.groupRate(1), 200.0 + 1.0);
    // The freed share flows to the other group, not into thin air.
    EXPECT_GT(sim.groupRate(2), uncapped);

    sim.clearGroupAllocations(1);
    sim.advanceBy(0.01);
    EXPECT_GT(sim.groupRate(1), 200.0 + 1.0);
    EXPECT_EQ(sim.registeredGroupCount(), 0u);
}

TEST(FlowGroups, TelemetryTracksGroupMembership)
{
    auto sim = quietSim(2);
    const net::VmId a = endpoint(sim.topology(), 0);
    const net::VmId b = endpoint(sim.topology(), 1);
    sim.startTransfer(a, b, 1.0e8, 2, 7);
    sim.startTransfer(b, a, 2.0e8, 2, 7);
    sim.startTransfer(a, b, 4.0e8, 2, 0); // ungrouped
    EXPECT_EQ(sim.groupTransferCount(7), 2u);
    EXPECT_DOUBLE_EQ(sim.groupPendingBytes(7), 3.0e8);
    EXPECT_EQ(sim.groupTransferCount(9), 0u);
    sim.runUntilAllComplete();
    EXPECT_EQ(sim.groupTransferCount(7), 0u);
    EXPECT_DOUBLE_EQ(sim.groupPendingBytes(7), 0.0);
}

// --- the cross-query allocator ------------------------------------------

TEST(Allocator, EqualElasticClaimsSplitEvenly)
{
    auto sim = quietSim(2);
    const std::size_t pair = sim.topology().pairIndex(0, 1);
    serve::BandwidthAllocator alloc(serve::AllocPolicy::MaxMinFair);
    std::vector<serve::QueryDemand> demands{
        {1, 1.0, {{pair, 0.0}}},
        {2, 4.0, {{pair, 0.0}}}, // weight ignored under maxmin
    };
    const auto a = alloc.allocate(sim, demands);
    EXPECT_EQ(a.cappedPairs, 1u);
    EXPECT_EQ(a.installedCaps, 2u);
    EXPECT_NEAR(a.planningShare.at(1), 0.5, 1e-9);
    EXPECT_NEAR(a.planningShare.at(2), 0.5, 1e-9);
}

TEST(Allocator, WeightedPolicySplitsByWeight)
{
    auto sim = quietSim(2);
    const std::size_t pair = sim.topology().pairIndex(0, 1);
    serve::BandwidthAllocator alloc(
        serve::AllocPolicy::WeightedPriority);
    std::vector<serve::QueryDemand> demands{
        {1, 3.0, {{pair, 0.0}}},
        {2, 1.0, {{pair, 0.0}}},
    };
    const auto a = alloc.allocate(sim, demands);
    EXPECT_NEAR(a.planningShare.at(1), 0.75, 1e-9);
    EXPECT_NEAR(a.planningShare.at(2), 0.25, 1e-9);
}

TEST(Allocator, FiniteDemandFreezesAndReleasesRemainder)
{
    auto sim = quietSim(2);
    const std::size_t pair = sim.topology().pairIndex(0, 1);
    const Mbps cap = sim.effectivePathCap(0, 1);
    serve::BandwidthAllocator alloc(serve::AllocPolicy::MaxMinFair);
    // Group 1 only wants a tenth of the pair; the elastic group 2
    // absorbs everything group 1 released.
    std::vector<serve::QueryDemand> demands{
        {1, 1.0, {{pair, 0.1 * cap}}},
        {2, 1.0, {{pair, 0.0}}},
    };
    const auto a = alloc.allocate(sim, demands);
    EXPECT_NEAR(a.planningShare.at(1), 0.1, 1e-9);
    EXPECT_NEAR(a.planningShare.at(2), 0.9, 1e-9);
}

TEST(Allocator, SoleDemanderKeepsWholeLink)
{
    auto sim = quietSim(3);
    serve::BandwidthAllocator alloc(serve::AllocPolicy::MaxMinFair);
    // Two queries on disjoint pairs: no contention, no caps.
    std::vector<serve::QueryDemand> demands{
        {1, 1.0, {{sim.topology().pairIndex(0, 1), 0.0}}},
        {2, 1.0, {{sim.topology().pairIndex(0, 2), 0.0}}},
    };
    const auto a = alloc.allocate(sim, demands);
    EXPECT_EQ(a.cappedPairs, 0u);
    EXPECT_EQ(a.installedCaps, 0u);
    EXPECT_NEAR(a.planningShare.at(1), 1.0, 1e-9);
    EXPECT_NEAR(a.planningShare.at(2), 1.0, 1e-9);
}

TEST(Allocator, StaleCapsRetireWhenContentionEnds)
{
    auto sim = quietSim(2);
    const net::VmId a = endpoint(sim.topology(), 0);
    const net::VmId b = endpoint(sim.topology(), 1);
    sim.startTransfer(a, b, 5.0e9, 8, 1);
    const net::TransferId other = sim.startTransfer(a, b, 5.0e9, 8, 2);
    const std::size_t pair = sim.topology().pairIndex(0, 1);
    serve::BandwidthAllocator alloc(serve::AllocPolicy::MaxMinFair);
    std::vector<serve::QueryDemand> both{
        {1, 1.0, {{pair, 0.0}}},
        {2, 1.0, {{pair, 0.0}}},
    };
    alloc.allocate(sim, both);
    sim.advanceBy(0.01);
    const Mbps capped = sim.groupRate(1);

    // Group 2 finishes and leaves the pair: the next round must lift
    // group 1's half-link cap so it can fill the idle half.
    sim.stopTransfer(other);
    std::vector<serve::QueryDemand> solo{{1, 1.0, {{pair, 0.0}}}};
    const auto round2 = alloc.allocate(sim, solo);
    EXPECT_EQ(round2.cappedPairs, 0u);
    sim.advanceBy(0.01);
    EXPECT_GT(sim.groupRate(1), 1.2 * capped);
}

TEST(Allocator, RejectsMalformedDemands)
{
    auto sim = quietSim(2);
    const std::size_t pair = sim.topology().pairIndex(0, 1);
    serve::BandwidthAllocator alloc(serve::AllocPolicy::MaxMinFair);
    std::vector<serve::QueryDemand> unsorted{
        {2, 1.0, {{pair, 0.0}}},
        {1, 1.0, {{pair, 0.0}}},
    };
    EXPECT_THROW(alloc.allocate(sim, unsorted), PanicError);
    std::vector<serve::QueryDemand> reserved{
        {0, 1.0, {{pair, 0.0}}}};
    EXPECT_THROW(alloc.allocate(sim, reserved), FatalError);
}

// --- share-aware planning ------------------------------------------------

TEST(Scheduler, WanShareScalesEstimatedStageTime)
{
    const auto topo = experiments::workerCluster(4);
    // A compute-free shuffle stage, so the estimate is purely
    // WAN-bound and the share's effect is exact.
    gda::JobSpec job;
    job.name = "shuffle-only";
    gda::StageSpec stage;
    stage.name = "shuffle";
    stage.selectivity = 1.0;
    stage.workPerMb = 0.0;
    job.stages.push_back(stage);
    job.inputBytes = 2.0e9;
    std::vector<Bytes> input(4, job.inputBytes / 4.0);
    const auto bw = Matrix<Mbps>::square(4, 500.0);
    auto ctx = gda::makeStageContext(topo, job, 0, input, bw);

    // A deliberately shuffling assignment: everything to DC 0.
    auto assignment = Matrix<Bytes>::square(4, 0.0);
    for (std::size_t i = 0; i < 4; ++i)
        assignment.at(i, 0) = input[i];

    const Seconds whole = gda::estimateStageTime(ctx, assignment);
    ctx.wanShare = 0.25;
    const Seconds quarter = gda::estimateStageTime(ctx, assignment);
    // A quarter of every link makes the WAN-bound stage 4x slower.
    EXPECT_NEAR(quarter, 4.0 * whole, 0.05 * quarter);

    ctx.wanShare = 0.0;
    EXPECT_THROW(gda::estimateStageTime(ctx, assignment), FatalError);
    ctx.wanShare = 1.5;
    EXPECT_THROW(gda::estimateStageTime(ctx, assignment), FatalError);
}

// --- the resident service ------------------------------------------------

TEST(Service, DrainReproducesBitIdenticalReports)
{
    serve::ServiceConfig cfg;
    cfg.maxConcurrent = 4;
    auto run = [&] {
        serve::Service service(experiments::workerCluster(4), cfg,
                               experiments::defaultSimConfig(),
                               nullptr, 33);
        for (std::size_t i = 0; i < 10; ++i)
            service.submit(smallQuery(i, i % 4, 4,
                                      static_cast<Seconds>(i)));
        return service.drain();
    };
    const auto a = run();
    const auto b = run();
    EXPECT_EQ(a.resultHash, b.resultHash);
    EXPECT_EQ(a.completed, 10u);
    EXPECT_EQ(a.timedOut, 0u);
    EXPECT_GT(a.makespan, 0.0);
}

TEST(Service, AdmissionCapQueuesExcessQueries)
{
    serve::ServiceConfig cfg;
    cfg.maxConcurrent = 2;
    serve::Service service(experiments::workerCluster(4), cfg,
                           experiments::quietSimConfig(), nullptr,
                           11);
    for (std::size_t i = 0; i < 6; ++i)
        service.submit(smallQuery(i, i % 4, 4, 0.0));
    const auto report = service.drain();
    EXPECT_EQ(report.completed, 6u);
    EXPECT_EQ(report.peakConcurrent, 2u);
    EXPECT_GE(report.queuedAdmissions, 4u);
    // Queued queries observed a real admission delay.
    Seconds maxWait = 0.0;
    for (const auto &q : report.queries)
        maxWait = std::max(maxWait, q.queueWait);
    EXPECT_GT(maxWait, 0.0);
}

TEST(Service, PerQueryGuardTimesOutInfeasibleQueries)
{
    serve::ServiceConfig cfg;
    cfg.maxConcurrent = 4;
    cfg.maxQuerySeconds = 2.0; // far below any real completion
    serve::Service service(experiments::workerCluster(4), cfg,
                           experiments::quietSimConfig(), nullptr,
                           21);
    for (std::size_t i = 0; i < 4; ++i)
        service.submit(smallQuery(i, i % 4, 4, 0.0));
    const auto report = service.drain();
    EXPECT_EQ(report.completed, 0u);
    EXPECT_EQ(report.timedOut, 4u);
    for (const auto &q : report.queries)
        EXPECT_TRUE(q.timedOut);
}

TEST(Service, StragglerRedispatchFiresAndStaysDeterministic)
{
    serve::ServiceConfig cfg;
    cfg.maxConcurrent = 6;
    // A tiny budget factor declares every epoch-spanning transfer a
    // straggler: the re-dispatch path itself must stay deterministic
    // and must not lose bytes.
    cfg.stragglerFactor = 0.01;
    auto run = [&] {
        serve::Service service(experiments::workerCluster(4), cfg,
                               experiments::quietSimConfig(),
                               nullptr, 55);
        for (std::size_t i = 0; i < 6; ++i)
            service.submit(wanQuery(i, 4));
        return service.drain();
    };
    const auto a = run();
    EXPECT_GT(a.redispatches, 0u);
    EXPECT_EQ(a.completed + a.timedOut, 6u);
    const auto b = run();
    EXPECT_EQ(a.resultHash, b.resultHash);
}

TEST(Service, MaxRedispatchesBoundsRepeatStragglers)
{
    // A budget factor this tiny declares a transfer straggling at
    // every epoch check, so the re-dispatch count is bounded only by
    // maxRedispatches. The default (1) preserves the historical
    // once-per-transfer behavior; raising it re-sends a still-slow
    // transfer again; 0 disables the path entirely.
    auto run = [&](std::size_t cap) {
        serve::ServiceConfig cfg;
        cfg.maxConcurrent = 6;
        cfg.stragglerFactor = 0.01;
        cfg.maxRedispatches = cap;
        serve::Service service(experiments::workerCluster(4), cfg,
                               experiments::quietSimConfig(),
                               nullptr, 55);
        for (std::size_t i = 0; i < 6; ++i)
            service.submit(wanQuery(i, 4));
        return service.drain();
    };
    const auto off = run(0);
    const auto once = run(1);
    const auto twice = run(2);
    EXPECT_EQ(off.redispatches, 0u);
    EXPECT_GT(once.redispatches, 0u);
    // Per-transfer cap of 2: some transfer that straggled after its
    // first re-dispatch is re-sent a second time.
    EXPECT_GT(twice.redispatches, once.redispatches);
    EXPECT_EQ(off.completed + off.timedOut, 6u);
    EXPECT_EQ(twice.completed + twice.timedOut, 6u);
    // Each arm stays bit-deterministic.
    EXPECT_EQ(run(2).resultHash, twice.resultHash);
}

TEST(Service, WeightedPolicyRaisesPriorityPlanningShare)
{
    const auto wanify = tinyWanify();
    auto run = [&](serve::AllocPolicy policy) {
        serve::ServiceConfig cfg;
        cfg.policy = policy;
        cfg.maxConcurrent = 6;
        serve::Service service(experiments::workerCluster(4), cfg,
                               experiments::quietSimConfig(),
                               wanify.get(), 77);
        for (std::size_t i = 0; i < 6; ++i)
            service.submit(wanQuery(i, 4, i % 2 == 0 ? 4.0 : 1.0));
        return service.drain();
    };
    const auto maxmin = run(serve::AllocPolicy::MaxMinFair);
    const auto weighted = run(serve::AllocPolicy::WeightedPriority);

    // Under maxmin, weights are ignored: every query plans with the
    // same worst-case share. Under the weighted policy the priority
    // class plans (and is enforced) with a larger share.
    EXPECT_NEAR(maxmin.queries[0].minPlanningShare,
                maxmin.queries[1].minPlanningShare, 1e-9);
    EXPECT_GT(weighted.queries[0].minPlanningShare,
              1.5 * weighted.queries[1].minPlanningShare);
    EXPECT_NE(maxmin.resultHash, weighted.resultHash);
}

TEST(Service, RetrainRepublishesSharedPredictor)
{
    const auto wanify = tinyWanify();
    const auto before = wanify->predictorSnapshot();
    serve::ServiceConfig cfg;
    cfg.maxConcurrent = 3;
    cfg.retrainEveryCompleted = 2;
    serve::Service service(experiments::workerCluster(4), cfg,
                           experiments::quietSimConfig(),
                           wanify.get(), 91);
    for (std::size_t i = 0; i < 5; ++i)
        service.submit(smallQuery(i, i % 4, 4, 0.0));
    const auto report = service.drain();
    EXPECT_EQ(report.completed, 5u);
    EXPECT_GE(report.retrainsPublished, 1u);
    // The facade now serves a different (warm-started) model, so
    // queries admitted after the publish pin fresher trees.
    EXPECT_NE(wanify->predictorSnapshot().get(), before.get());
}

TEST(Service, AdaptiveAprioriShareIgnoresComputeBoundPeers)
{
    // Three compute-heavy local queries admitted at t = 0 are deep in
    // their compute phase when a fourth query arrives: they occupy no
    // WAN, so the adaptive a-priori share lets the newcomer plan with
    // the whole mesh, while the legacy 1 / N prior still divides by
    // every active query.
    auto run = [&](bool adaptive) {
        serve::ServiceConfig cfg;
        cfg.maxConcurrent = 8;
        cfg.scheduler = serve::SchedulerKind::Locality;
        cfg.adaptiveAprioriShare = adaptive;
        serve::Service service(experiments::workerCluster(4), cfg,
                               experiments::quietSimConfig(),
                               nullptr, 63);
        for (std::size_t i = 0; i < 3; ++i) {
            auto heavy = smallQuery(i, i, 4, 0.0);
            heavy.job.stages[0].workPerMb = 5.0;
            service.submit(heavy);
        }
        service.submit(smallQuery(3, 3, 4, 10.0));
        return service.drain();
    };

    const auto adaptive = run(true);
    const auto legacy = run(false);
    ASSERT_EQ(adaptive.completed, 4u);
    ASSERT_EQ(legacy.completed, 4u);

    // Co-planning cohort of three at t = 0: both priors agree.
    EXPECT_NEAR(adaptive.queries[0].minPlanningShare, 1.0 / 3.0,
                1e-9);
    EXPECT_NEAR(legacy.queries[0].minPlanningShare, 1.0 / 3.0,
                1e-9);
    // The late query plans alone against an idle mesh.
    EXPECT_NEAR(adaptive.queries[3].minPlanningShare, 1.0, 1e-9);
    EXPECT_NEAR(legacy.queries[3].minPlanningShare, 0.25, 1e-9);
}

TEST(Service, ForecastAdmissionHoldsThroughTheTrough)
{
    // An all-pairs maintenance window over [0, 60): the mesh mean sits
    // at 0.3 of nominal while the forecast sees full recovery inside
    // the horizon, so admission is deferred to the window's end —
    // and without forecast admission the same query starts at t = 0.
    scenario::ScenarioSpec spec;
    spec.name = "trough";
    scenario::ScenarioEvent ev;
    ev.kind = scenario::EventKind::Maintenance;
    ev.start = 0.0;
    ev.duration = 60.0;
    ev.magnitude = 0.7;
    spec.events.push_back(ev);
    const scenario::ScenarioTimeline timeline(spec, 4, 7);

    auto run = [&](bool holdOn) {
        serve::ServiceConfig cfg;
        cfg.maxConcurrent = 4;
        cfg.dynamics = &timeline;
        cfg.forecast.enabled = true;
        cfg.forecast.horizon = 120.0;
        cfg.forecast.step = 5.0;
        cfg.forecastAdmission = holdOn;
        serve::Service service(experiments::workerCluster(4), cfg,
                               experiments::quietSimConfig(),
                               nullptr, 29);
        service.submit(smallQuery(0, 0, 4, 0.0));
        return service.drain();
    };

    const auto held = run(true);
    ASSERT_EQ(held.completed, 1u);
    EXPECT_EQ(held.forecastHeldAdmissions, 1u);
    // Admitted at the recovery, not at arrival — and the hold is
    // bounded by maxAdmissionHold (120 s) on top of the window.
    EXPECT_GE(held.queries[0].admitted, 55.0);
    EXPECT_LE(held.queries[0].admitted, 65.0);

    const auto eager = run(false);
    ASSERT_EQ(eager.completed, 1u);
    EXPECT_EQ(eager.forecastHeldAdmissions, 0u);
    EXPECT_LE(eager.queries[0].admitted, 1.5);

    // The hold path stays deterministic.
    const auto again = run(true);
    EXPECT_EQ(held.resultHash, again.resultHash);
    EXPECT_DOUBLE_EQ(held.queries[0].admitted,
                     again.queries[0].admitted);
}

TEST(Service, ForecastAdmissionHoldExpiresIntoCoolOff)
{
    // A trough longer than maxAdmissionHold: the forecast still sees
    // recovery inside the horizon, so a hold begins at arrival, but
    // it is capped at maxAdmissionHold and the following cool-off
    // admits the query mid-trough — bounded delay, not starvation.
    scenario::ScenarioSpec spec;
    spec.name = "long-trough";
    scenario::ScenarioEvent ev;
    ev.kind = scenario::EventKind::Maintenance;
    ev.start = 0.0;
    ev.duration = 100.0;
    ev.magnitude = 0.7;
    spec.events.push_back(ev);
    const scenario::ScenarioTimeline timeline(spec, 4, 7);

    auto run = [&] {
        serve::ServiceConfig cfg;
        cfg.maxConcurrent = 4;
        cfg.dynamics = &timeline;
        cfg.forecast.enabled = true;
        cfg.forecast.horizon = 120.0;
        cfg.forecast.step = 5.0;
        cfg.forecastAdmission = true;
        cfg.maxAdmissionHold = 20.0;
        serve::Service service(experiments::workerCluster(4), cfg,
                               experiments::quietSimConfig(),
                               nullptr, 29);
        service.submit(smallQuery(0, 0, 4, 0.0));
        return service.drain();
    };

    const auto report = run();
    ASSERT_EQ(report.completed, 1u);
    EXPECT_EQ(report.forecastHeldAdmissions, 1u);
    // Admitted when the hold expires — well before the trough's end
    // at t = 100 — and not re-held thanks to the cool-off.
    EXPECT_GE(report.queries[0].admitted, 18.0);
    EXPECT_LE(report.queries[0].admitted, 60.0);

    const auto again = run();
    EXPECT_EQ(report.resultHash, again.resultHash);
    EXPECT_DOUBLE_EQ(report.queries[0].admitted,
                     again.queries[0].admitted);
}

TEST(Workload, MixedWorkloadIsDeterministicAndShaped)
{
    serve::WorkloadConfig cfg;
    cfg.queries = 40;
    const auto a = serve::mixedWorkload(cfg, 8, 13);
    const auto b = serve::mixedWorkload(cfg, 8, 13);
    ASSERT_EQ(a.size(), 40u);
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].weight, b[i].weight);
        EXPECT_LE(a[i].arrival, cfg.arrivalWindow);
        const double total = std::accumulate(
            a[i].inputByDc.begin(), a[i].inputByDc.end(), 0.0);
        EXPECT_NEAR(total, a[i].job.inputBytes,
                    1e-6 * a[i].job.inputBytes);
    }
}
