/**
 * @file
 * Integration and property tests across the whole stack: the trained
 * predictor against the live simulator, the end-to-end WANify claims
 * (prediction beats static; WANify lifts the minimum BW and lowers
 * latency), and parameterized sweeps over cluster sizes.
 */

#include <gtest/gtest.h>

#include "core/bandwidth_analyzer.hh"
#include "core/bw.hh"
#include "core/wanify.hh"
#include "experiments/predictor_factory.hh"
#include "experiments/runner.hh"
#include "experiments/testbed.hh"
#include "gda/engine.hh"
#include "ml/metrics.hh"
#include "monitor/measurement.hh"
#include "sched/locality.hh"
#include "storage/hdfs.hh"
#include "workloads/terasort.hh"

using namespace wanify;
using namespace wanify::experiments;

namespace {

/** Shared trained predictor (expensive; trained once per process). */
std::shared_ptr<const core::RuntimeBwPredictor>
predictor()
{
    return sharedPredictor();
}

} // namespace

TEST(AnalyzerIntegration, CollectsPerPairSamples)
{
    core::AnalyzerConfig cfg;
    cfg.clusterSizes = {3};
    cfg.meshesPerSize = 2;
    core::BandwidthAnalyzer analyzer(cfg);
    const auto data = analyzer.collect(4242);
    // 2 meshes x 3*2 ordered pairs.
    EXPECT_EQ(data.size(), 12u);
    EXPECT_EQ(data.featureCount(), monitor::kFeatureCount);
    for (std::size_t i = 0; i < data.size(); ++i)
        EXPECT_GT(data.target(i), 0.0);
}

TEST(PredictorIntegration, TrainingAccuracyIsHigh)
{
    // The paper reports 98.51% training accuracy with 100 estimators.
    core::AnalyzerConfig cfg;
    cfg.clusterSizes = {4, 8};
    cfg.meshesPerSize = 10;
    core::BandwidthAnalyzer analyzer(cfg);
    const auto data = analyzer.collect(777);

    core::RuntimeBwPredictor pred(sharedForestConfig());
    pred.train(data, 778);

    std::vector<double> truth, fitted;
    for (std::size_t i = 0; i < data.size(); ++i) {
        truth.push_back(data.target(i));
        fitted.push_back(pred.predictPair(data.x(i)));
    }
    EXPECT_GT(ml::relativeAccuracyPct(truth, fitted), 90.0);
    EXPECT_GT(ml::r2(truth, fitted), 0.95);
}

TEST(PredictorIntegration, BeatsStaticOnUnseenNetworkStates)
{
    // The Fig. 11 claim as an invariant: across fresh network states,
    // the predicted matrix has no more significant differences from
    // the runtime truth than the static-independent matrix.
    const auto pred = predictor();
    const auto topo = monitoringCluster(8);
    const auto simCfg = defaultSimConfig();
    const monitor::MeasurementConfig mc;

    std::size_t staticWorse = 0;
    for (int trial = 0; trial < 3; ++trial) {
        const std::uint64_t seed = 99000 + 7 * trial;
        const auto indep =
            monitor::staticIndependentBw(topo, simCfg, mc, seed);

        net::NetworkSim sim(topo, simCfg, seed ^ 0xf00d);
        sim.advanceBy(25.0);
        monitor::MeshMeasurer measurer(sim);
        Rng rng(seed);
        const auto snapshot = measurer.snapshot(mc, rng);
        const auto predicted = pred->predictMatrix(topo, snapshot);
        const auto runtime =
            measurer.measureSimultaneous(mc.stableDuration, 1);

        const auto staticGaps =
            core::countSignificantGaps(indep, runtime);
        const auto predGaps =
            core::countSignificantGaps(predicted, runtime);
        EXPECT_LE(predGaps, staticGaps);
        staticWorse += staticGaps > predGaps ? 1 : 0;
    }
    // And strictly better in at least one state.
    EXPECT_GE(staticWorse, 1u);
}

TEST(EndToEnd, WanifyLiftsMinBwAndLatencyOnTeraSort)
{
    // The Fig. 5 claim as an invariant: full WANify beats the
    // single-connection baseline on latency and at least doubles the
    // minimum BW.
    const auto topo = workerCluster(8);
    const auto simCfg = defaultSimConfig();
    const auto job = workloads::teraSort(40.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    const auto input = hdfs.distribution();
    sched::LocalityScheduler locality;
    const auto staticBw = monitor::staticIndependentBw(
        topo, simCfg, monitor::MeasurementConfig{}, 31);

    core::WanifyConfig wcfg;
    core::Wanify wanify(wcfg);
    wanify.setPredictor(predictor());

    auto sweep = [&](core::Wanify *w, int conns) {
        return runTrials(
            [&](std::uint64_t seed) {
                gda::Engine engine(topo, simCfg, seed);
                gda::RunOptions opts;
                opts.schedulerBw = staticBw;
                opts.wanify = w;
                if (conns > 0) {
                    opts.staticConnections =
                        Matrix<int>::square(8, conns);
                }
                return engine.run(job, input, locality, opts);
            },
            3);
    };

    const auto vanilla = sweep(nullptr, 1);
    const auto enabled = sweep(&wanify, 0);
    EXPECT_LT(enabled.meanLatency, vanilla.meanLatency);
    EXPECT_GT(enabled.meanMinBw, 2.0 * vanilla.meanMinBw);
}

TEST(EndToEnd, ErrorInjectionDegradesWanify)
{
    // Fig. 8(b)'s direction as an invariant: +-100 Mbps prediction
    // errors reduce the minimum BW WANify achieves.
    const auto topo = workerCluster(8);
    const auto simCfg = defaultSimConfig();
    const auto job = workloads::teraSort(40.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    const auto input = hdfs.distribution();
    sched::LocalityScheduler locality;

    core::WanifyConfig wcfg;
    core::Wanify wanify(wcfg);
    wanify.setPredictor(predictor());

    // A reference predicted matrix from a fresh network state.
    net::NetworkSim sim(topo, simCfg, 5511);
    sim.advanceBy(10.0);
    monitor::MeshMeasurer measurer(sim);
    Rng rng(5512);
    const auto predicted = wanify.predictor().predictMatrix(
        topo, measurer.snapshot(monitor::MeasurementConfig{}, rng));

    Matrix<Mbps> erred = predicted;
    Rng flip(5513);
    for (std::size_t i = 0; i < 8; ++i)
        for (std::size_t j = 0; j < 8; ++j)
            if (i != j)
                erred.at(i, j) = std::max(
                    10.0, erred.at(i, j) +
                              (flip.bernoulli(0.5) ? 100.0
                                                   : -100.0));

    auto sweep = [&](const Matrix<Mbps> &bwForPlan) {
        return runTrials(
            [&](std::uint64_t seed) {
                gda::Engine engine(topo, simCfg, seed);
                gda::RunOptions opts;
                opts.schedulerBw = predicted;
                opts.wanify = &wanify;
                opts.predictedBwOverride = bwForPlan;
                return engine.run(job, input, locality, opts);
            },
            3);
    };
    const auto clean = sweep(predicted);
    const auto injected = sweep(erred);
    EXPECT_LT(injected.meanMinBw, clean.meanMinBw);
}

// ---- parameterized sweep over cluster sizes -----------------------------------

class ClusterSizeSweep : public ::testing::TestWithParam<std::size_t>
{};

TEST_P(ClusterSizeSweep, EngineAndPredictorHandleAnySize)
{
    const std::size_t n = GetParam();
    const auto topo = workerCluster(n);
    const auto job = workloads::teraSort(4.0 * n);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    sched::LocalityScheduler locality;

    gda::Engine engine(topo, defaultSimConfig(), 1234 + n);
    gda::RunOptions opts;
    opts.schedulerBw = Matrix<Mbps>::square(n, 300.0);
    const auto result =
        engine.run(job, hdfs.distribution(), locality, opts);
    EXPECT_GT(result.latency, 0.0);
    EXPECT_EQ(result.stages.size(), 2u);

    // One shared model predicts for every size (Section 3.3.2).
    net::NetworkSim sim(monitoringCluster(n), defaultSimConfig(),
                        77 + n);
    sim.advanceBy(5.0);
    monitor::MeshMeasurer measurer(sim);
    Rng rng(n);
    const auto snapshot =
        measurer.snapshot(monitor::MeasurementConfig{}, rng);
    const auto predicted = predictor()->predictMatrix(
        monitoringCluster(n), snapshot);
    EXPECT_EQ(predicted.rows(), n);
    for (std::size_t i = 0; i < n; ++i)
        for (std::size_t j = 0; j < n; ++j)
            EXPECT_GE(predicted.at(i, j), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ClusterSizeSweep,
                         ::testing::Values(2, 3, 5, 8));
