/**
 * @file
 * Tests for the scenario engine: event semantics, deterministic
 * replay, CSV trace round-trips, the drift detector firing end to
 * end, and engine/runner integration under dynamics.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <string>

#include <algorithm>
#include <set>

#include "common/error.hh"
#include "core/bandwidth_analyzer.hh"
#include "experiments/predictor_factory.hh"
#include "experiments/runner.hh"
#include "experiments/testbed.hh"
#include "gda/engine.hh"
#include "ml/csv.hh"
#include "sched/locality.hh"
#include "sched/tetrium.hh"
#include "scenario/driver.hh"
#include "scenario/library.hh"
#include "scenario/trace.hh"
#include "storage/hdfs.hh"
#include "workloads/terasort.hh"

using namespace wanify;
using namespace wanify::scenario;

namespace {

net::Topology
topo4()
{
    return experiments::workerCluster(4, 2);
}

/** A temp file path unique to this test binary. */
std::string
tmpPath(const std::string &name)
{
    return ::testing::TempDir() + "wanify_scenario_" + name;
}

} // namespace

// ---- timeline event semantics ----------------------------------------------

TEST(ScenarioTimeline, OutageWindowAndRecovery)
{
    ScenarioSpec spec;
    spec.name = "t";
    ScenarioEvent ev;
    ev.kind = EventKind::Outage;
    ev.src = 1;
    ev.dst = kAnyDc;
    ev.start = 10.0;
    ev.duration = 20.0;
    ev.residual = 0.05;
    spec.events.push_back(ev);
    const ScenarioTimeline timeline(spec, 4, 1);

    EXPECT_DOUBLE_EQ(timeline.capFactor(1, 2, 9.9), 1.0);
    EXPECT_DOUBLE_EQ(timeline.capFactor(1, 2, 10.0), 0.05);
    EXPECT_DOUBLE_EQ(timeline.capFactor(1, 2, 29.9), 0.05);
    EXPECT_DOUBLE_EQ(timeline.capFactor(1, 2, 30.0), 1.0);
    // Selector: only row 1 is affected.
    EXPECT_DOUBLE_EQ(timeline.capFactor(2, 1, 15.0), 1.0);
    // Diagonal is always 1.
    EXPECT_DOUBLE_EQ(timeline.capFactor(1, 1, 15.0), 1.0);
}

TEST(ScenarioTimeline, DiurnalBoundsAndPeriodicity)
{
    ScenarioSpec spec;
    spec.name = "t";
    ScenarioEvent ev;
    ev.kind = EventKind::Diurnal;
    ev.start = 0.0;
    ev.magnitude = 0.4;
    ev.period = 100.0;
    spec.events.push_back(ev);
    const ScenarioTimeline timeline(spec, 4, 1);

    for (double t = 0.0; t <= 300.0; t += 7.0) {
        const double f = timeline.capFactor(0, 1, t);
        EXPECT_GE(f, 0.6 - 1e-12);
        EXPECT_LE(f, 1.0 + 1e-12);
    }
    EXPECT_NEAR(timeline.capFactor(0, 1, 0.0), 1.0, 1e-12);
    EXPECT_NEAR(timeline.capFactor(0, 1, 50.0), 0.6, 1e-12);
    EXPECT_NEAR(timeline.capFactor(0, 1, 100.0), 1.0, 1e-12);
}

TEST(ScenarioTimeline, DegradationRampsAndHolds)
{
    ScenarioSpec spec;
    spec.name = "t";
    ScenarioEvent ev;
    ev.kind = EventKind::Degradation;
    ev.src = 0;
    ev.dst = 3;
    ev.start = 10.0;
    ev.duration = 40.0;
    ev.magnitude = 0.8;
    spec.events.push_back(ev);
    const ScenarioTimeline timeline(spec, 4, 1);

    EXPECT_DOUBLE_EQ(timeline.capFactor(0, 3, 5.0), 1.0);
    EXPECT_NEAR(timeline.capFactor(0, 3, 30.0), 0.6, 1e-12);
    EXPECT_NEAR(timeline.capFactor(0, 3, 50.0), 0.2, 1e-12);
    EXPECT_NEAR(timeline.capFactor(0, 3, 500.0), 0.2, 1e-12);
}

TEST(ScenarioTimeline, RttInflationOnlyTouchesRtt)
{
    ScenarioSpec spec;
    spec.name = "t";
    ScenarioEvent ev;
    ev.kind = EventKind::RttInflation;
    ev.start = 0.0;
    ev.duration = 50.0;
    ev.magnitude = 1.5;
    spec.events.push_back(ev);
    const ScenarioTimeline timeline(spec, 4, 1);

    EXPECT_DOUBLE_EQ(timeline.capFactor(0, 1, 25.0), 1.0);
    EXPECT_DOUBLE_EQ(timeline.rttFactor(0, 1, 25.0), 2.5);
    EXPECT_DOUBLE_EQ(timeline.rttFactor(0, 1, 60.0), 1.0);
}

TEST(ScenarioTimeline, ValidatesEvents)
{
    ScenarioSpec spec;
    spec.name = "t";
    ScenarioEvent ev;
    ev.kind = EventKind::Outage;
    ev.src = 9; // out of range for 4 DCs
    spec.events.push_back(ev);
    EXPECT_THROW(ScenarioTimeline(spec, 4, 1), FatalError);

    spec.events[0].src = 0;
    spec.events[0].magnitude = 1.5;
    EXPECT_THROW(ScenarioTimeline(spec, 4, 1), FatalError);
}

TEST(ScenarioTimeline, JitterIsDeterministicPerSeed)
{
    ScenarioSpec spec;
    spec.name = "t";
    ScenarioEvent ev;
    ev.kind = EventKind::Outage;
    ev.start = 50.0;
    ev.duration = 10.0;
    ev.startJitter = 40.0;
    spec.events.push_back(ev);

    const ScenarioTimeline a(spec, 4, 7);
    const ScenarioTimeline b(spec, 4, 7);
    const ScenarioTimeline c(spec, 4, 8);
    bool anyDiffer = false;
    for (double t = 40.0; t <= 110.0; t += 1.0) {
        EXPECT_DOUBLE_EQ(a.capFactor(0, 1, t), b.capFactor(0, 1, t));
        anyDiffer |=
            a.capFactor(0, 1, t) != c.capFactor(0, 1, t);
    }
    EXPECT_TRUE(anyDiffer);
}

// ---- library ----------------------------------------------------------------

TEST(ScenarioLibrary, HasAtLeastSixScenariosAndAllCompile)
{
    const auto names = libraryScenarioNames();
    EXPECT_GE(names.size(), 6u);
    for (const auto &name : names) {
        const auto spec = libraryScenario(name);
        EXPECT_EQ(spec.name, name);
        EXPECT_FALSE(spec.description.empty());
        // Every library scenario must compile for 4- and 8-DC
        // clusters.
        ScenarioTimeline(spec, 4, 1);
        ScenarioTimeline(spec, 8, 1);
        EXPECT_TRUE(isLibraryScenario(name));
    }
    EXPECT_FALSE(isLibraryScenario("no-such-scenario"));
    EXPECT_THROW(libraryScenario("no-such-scenario"), FatalError);
}

// ---- scenario-conditioned analyzer campaigns --------------------------------

namespace {

core::AnalyzerConfig
campaignConfig(std::size_t meshes)
{
    core::AnalyzerConfig cfg;
    cfg.clusterSizes = {4};
    cfg.meshesPerSize = meshes;
    cfg.sim = experiments::defaultSimConfig();
    cfg.dynamics = campaignDynamics();
    return cfg;
}

/** Smallest stable BW over every mesh's off-diagonal pairs. */
Mbps
minStableBw(const std::vector<core::CollectedMesh> &meshes)
{
    Mbps lo = -1.0;
    for (const auto &mesh : meshes) {
        const std::size_t n = mesh.clusterSize;
        for (net::DcId i = 0; i < n; ++i) {
            for (net::DcId j = 0; j < n; ++j) {
                if (i == j)
                    continue;
                const Mbps bw = mesh.stableBw.at(i, j);
                lo = lo < 0.0 ? bw : std::min(lo, bw);
            }
        }
    }
    return std::max(0.0, lo);
}

} // namespace

TEST(AnalyzerCampaign, MeshSeedsAreCollisionFree)
{
    // The shared predictor's campaign: 4 sizes x 24 meshes. Every
    // mesh must get its own warm-up stream (the old scheme reused
    // one stream per size).
    core::AnalyzerConfig cfg;
    cfg.clusterSizes = {2, 4, 6, 8};
    cfg.meshesPerSize = 24;
    const auto seeds =
        core::BandwidthAnalyzer::meshSeeds(cfg, 20250042);
    ASSERT_EQ(seeds.size(), 96u);
    std::set<std::uint64_t> unique(seeds.begin(), seeds.end());
    EXPECT_EQ(unique.size(), seeds.size());
}

TEST(AnalyzerCampaign, ConditionedCollectionIsDeterministic)
{
    core::BandwidthAnalyzer analyzer(campaignConfig(9));
    const auto a = analyzer.collectMeshes(7);
    const auto b = analyzer.collectMeshes(7);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t m = 0; m < a.size(); ++m) {
        ASSERT_EQ(a[m].clusterSize, b[m].clusterSize);
        for (net::DcId i = 0; i < 4; ++i) {
            for (net::DcId j = 0; j < 4; ++j) {
                EXPECT_DOUBLE_EQ(a[m].snapshotBw.at(i, j),
                                 b[m].snapshotBw.at(i, j));
                EXPECT_DOUBLE_EQ(a[m].stableBw.at(i, j),
                                 b[m].stableBw.at(i, j));
            }
        }
    }
}

TEST(AnalyzerCampaign, ConditioningCoversDriftedRegimes)
{
    // Three cycles through the library: some meshes land inside
    // outage/degradation windows, so the campaign's worst-case
    // stable BW sits far below anything a stationary campaign sees.
    core::BandwidthAnalyzer conditioned(campaignConfig(27));
    auto stationaryCfg = campaignConfig(9);
    stationaryCfg.dynamics = nullptr;
    core::BandwidthAnalyzer stationary(stationaryCfg);

    const auto condMeshes = conditioned.collectMeshes(7);
    const auto statMeshes = stationary.collectMeshes(7);
    const Mbps condMin = minStableBw(condMeshes);
    const Mbps statMin = minStableBw(statMeshes);
    EXPECT_LT(condMin, 0.7 * statMin);

    // Round-trip into training rows: one per ordered pair per mesh.
    const auto data = conditioned.flatten(condMeshes, 7);
    EXPECT_EQ(data.size(), condMeshes.size() * 4 * 3);
}

TEST(AnalyzerCampaign, IncrementalAbsorbAccumulatesRows)
{
    core::AnalyzerConfig cfg;
    cfg.clusterSizes = {4};
    cfg.meshesPerSize = 2;
    cfg.sim = experiments::defaultSimConfig();
    core::BandwidthAnalyzer analyzer(cfg);
    const auto meshes = analyzer.collectMeshes(11);
    ASSERT_EQ(meshes.size(), 2u);

    const auto topo = experiments::workerCluster(4, 2);
    EXPECT_EQ(analyzer.incremental().size(), 0u);
    EXPECT_EQ(analyzer.absorb(topo, meshes, 12), 24u);
    EXPECT_EQ(analyzer.incremental().size(), 24u);
    EXPECT_EQ(analyzer.absorb(topo, meshes, 13), 24u);
    EXPECT_EQ(analyzer.incremental().size(), 48u);
    analyzer.clearIncremental();
    EXPECT_EQ(analyzer.incremental().size(), 0u);
}

// ---- driver determinism and drift ------------------------------------------

TEST(ScenarioDriver, SameSpecAndSeedIsBitIdentical)
{
    const auto topo = topo4();
    const auto spec = libraryScenario("cascading");
    DriveConfig cfg;
    cfg.seed = 31337;
    cfg.horizon = 120.0;
    const auto a = driveScenario(spec, topo, cfg);
    const auto b = driveScenario(spec, topo, cfg);
    EXPECT_TRUE(a.trace.identical(b.trace));
    EXPECT_EQ(a.trace.hash(), b.trace.hash());
    EXPECT_EQ(a.retrainTriggers, b.retrainTriggers);

    cfg.seed = 31338;
    const auto c = driveScenario(spec, topo, cfg);
    EXPECT_FALSE(a.trace.identical(c.trace));
}

TEST(ScenarioDriver, OutageFiresDriftDetectorSteadyDoesNot)
{
    const auto topo = topo4();
    DriveConfig cfg;
    cfg.seed = 11;

    const auto quiet =
        driveScenario(libraryScenario("steady"), topo, cfg);
    EXPECT_EQ(quiet.retrainTriggers, 0u);
    EXPECT_DOUBLE_EQ(quiet.maxErrorFraction, 0.0);

    const auto outage =
        driveScenario(libraryScenario("dc-outage"), topo, cfg);
    EXPECT_GE(outage.retrainTriggers, 1u);
    EXPECT_GT(outage.maxErrorFraction, 0.0);
    // The first retrain must land right after the outage begins
    // (t = 60 in the library spec).
    bool foundFire = false;
    for (const auto &e : outage.epochs) {
        if (e.retrainFired) {
            EXPECT_GE(e.t, 60.0);
            EXPECT_LE(e.t, 90.0);
            foundFire = true;
            break;
        }
    }
    EXPECT_TRUE(foundFire);
}

// ---- trace record / replay --------------------------------------------------

TEST(ScenarioTrace, CsvRoundTripPreservesSamples)
{
    const auto topo = topo4();
    DriveConfig cfg;
    cfg.seed = 5;
    cfg.horizon = 60.0;
    const auto run =
        driveScenario(libraryScenario("diurnal"), topo, cfg);
    ASSERT_FALSE(run.trace.empty());

    const std::string path = tmpPath("roundtrip.csv");
    writeTraceCsv(path, run.trace);
    const auto loaded = readTraceCsv(path);
    std::remove(path.c_str());

    ASSERT_EQ(loaded.dcs, run.trace.dcs);
    ASSERT_EQ(loaded.size(), run.trace.size());
    for (std::size_t k = 0; k < loaded.size(); ++k) {
        EXPECT_NEAR(loaded.times[k], run.trace.times[k], 1e-6);
        for (std::size_t p = 0; p < loaded.rows[k].size(); ++p)
            EXPECT_NEAR(loaded.rows[k][p], run.trace.rows[k][p],
                        1e-9);
    }
}

TEST(ScenarioTrace, ReplayReproducesRecordedMultipliers)
{
    const auto topo = topo4();
    DriveConfig cfg;
    cfg.seed = 5;
    cfg.horizon = 60.0;
    const auto run =
        driveScenario(libraryScenario("dc-outage"), topo, cfg);

    const auto replayed = driveReplay(run.trace, topo, cfg);
    ASSERT_EQ(replayed.trace.size(), run.trace.size());
    for (std::size_t k = 0; k < run.trace.size(); ++k) {
        for (std::size_t p = 0; p < run.trace.rows[k].size(); ++p)
            EXPECT_NEAR(replayed.trace.rows[k][p],
                        run.trace.rows[k][p], 1e-9)
                << "sample " << k << " pair " << p;
    }
    // Replay of a replay is bit-identical: the medium is exact.
    const auto again = driveReplay(run.trace, topo, cfg);
    EXPECT_TRUE(replayed.trace.identical(again.trace));
}

TEST(ScenarioTrace, RejectsMalformedTraces)
{
    BwTrace trace;
    EXPECT_THROW(trace.add(1.0, {1.0}), FatalError); // dcs not set
    trace.dcs = 2;
    EXPECT_THROW(trace.add(1.0, {1.0}), FatalError); // wrong arity
    EXPECT_THROW(trace.add(1.0, {1.0, 1.0, 1.0, 1.0}, {1.0}),
                 FatalError); // wrong RTT arity
    trace.add(1.0, {1.0, 1.0, 1.0, 1.0});
    EXPECT_THROW(trace.add(0.5, {1.0, 1.0, 1.0, 1.0}),
                 FatalError); // non-increasing time
    EXPECT_THROW(TraceReplay(BwTrace{}), FatalError);
}

TEST(ScenarioTrace, RttAndBurstsSurviveCsvRoundTrip)
{
    // flash-crowd scripts both RTT inflation and background bursts.
    const auto topo = topo4();
    DriveConfig cfg;
    cfg.seed = 9;
    cfg.horizon = 150.0;
    const auto run =
        driveScenario(libraryScenario("flash-crowd"), topo, cfg);

    ASSERT_FALSE(run.trace.bursts.empty());
    bool sawInflation = false;
    for (const auto &row : run.trace.rttRows)
        for (double f : row)
            sawInflation = sawInflation || f > 1.0;
    EXPECT_TRUE(sawInflation);

    const std::string path = tmpPath("rtt_bursts.csv");
    writeTraceCsv(path, run.trace);
    const auto loaded = readTraceCsv(path);
    std::remove(path.c_str());
    EXPECT_TRUE(loaded.identical(run.trace));
    EXPECT_EQ(loaded.hash(), run.trace.hash());
}

TEST(ScenarioTrace, ReplayReproducesRttFactorsAndBursts)
{
    const auto topo = topo4();
    DriveConfig cfg;
    cfg.seed = 9;
    cfg.horizon = 150.0;
    const auto run =
        driveScenario(libraryScenario("flash-crowd"), topo, cfg);

    const auto replayed = driveReplay(run.trace, topo, cfg);
    // RTT factors replay exactly: they carry no OU noise.
    ASSERT_EQ(replayed.trace.rttRows.size(),
              run.trace.rttRows.size());
    for (std::size_t k = 0; k < run.trace.rttRows.size(); ++k)
        for (std::size_t p = 0; p < run.trace.rttRows[k].size(); ++p)
            EXPECT_DOUBLE_EQ(replayed.trace.rttRows[k][p],
                             run.trace.rttRows[k][p])
                << "sample " << k << " pair " << p;
    // The recorded bursts are re-launched and re-recorded verbatim.
    ASSERT_EQ(replayed.trace.bursts.size(), run.trace.bursts.size());
    for (std::size_t b = 0; b < run.trace.bursts.size(); ++b) {
        EXPECT_DOUBLE_EQ(replayed.trace.bursts[b].start,
                         run.trace.bursts[b].start);
        EXPECT_EQ(replayed.trace.bursts[b].src,
                  run.trace.bursts[b].src);
        EXPECT_EQ(replayed.trace.bursts[b].dst,
                  run.trace.bursts[b].dst);
        EXPECT_EQ(replayed.trace.bursts[b].connections,
                  run.trace.bursts[b].connections);
    }
}

TEST(ScenarioTrace, LegacyCapacityOnlyCsvStillLoads)
{
    // A trace written by the pre-RTT schema: one `t` feature and
    // n^2 target columns, no markers.
    ml::Dataset legacy(1, 16);
    for (double t = 5.0; t <= 20.0; t += 5.0)
        legacy.add({t}, std::vector<double>(16, 0.75));
    const std::string path = tmpPath("legacy.csv");
    ml::writeCsvFile(path, legacy, {"t"});
    const auto loaded = readTraceCsv(path);
    std::remove(path.c_str());

    EXPECT_EQ(loaded.dcs, 4u);
    ASSERT_EQ(loaded.size(), 4u);
    EXPECT_TRUE(loaded.bursts.empty());
    for (const auto &row : loaded.rttRows)
        for (double f : row)
            EXPECT_DOUBLE_EQ(f, 1.0);
    for (const auto &row : loaded.rows)
        for (double m : row)
            EXPECT_DOUBLE_EQ(m, 0.75);
}

// ---- replay boundary semantics ---------------------------------------------

TEST(ScenarioTrace, CapFactorHoldsRowsOverClosedRightIntervals)
{
    // Rows are held over (t_{k-1}, t_k]: an exact-t_k query reads
    // row k, not k+1; t before the first timestamp reads row 0; t
    // past the last reads the final row.
    BwTrace trace;
    trace.dcs = 2;
    trace.add(10.0, {1.0, 0.5, 0.5, 1.0});
    trace.add(20.0, {1.0, 0.25, 0.25, 1.0});
    const TraceReplay replay(trace);

    EXPECT_DOUBLE_EQ(replay.capFactorAt(0, 1, 0.0), 0.5);
    EXPECT_DOUBLE_EQ(replay.capFactorAt(0, 1, 10.0), 0.5);
    EXPECT_DOUBLE_EQ(replay.capFactorAt(0, 1, 10.1), 0.25);
    EXPECT_DOUBLE_EQ(replay.capFactorAt(0, 1, 20.0), 0.25);
    EXPECT_DOUBLE_EQ(replay.capFactorAt(0, 1, 1.0e6), 0.25);
    // Diagonal entries replay as recorded (identity here).
    EXPECT_DOUBLE_EQ(replay.capFactorAt(0, 0, 10.0), 1.0);
}

TEST(ScenarioTrace, ApplyAtInstallsTheIntervalAfterTheBoundary)
{
    // The deliberate asymmetry with capFactorAt: applyAt answers
    // "what governs the interval starting at t" (with a microsecond
    // of forward slack for bit-exact replay), so applying at an exact
    // sample time installs the *next* row while capFactorAt still
    // reads the closed-right row.
    BwTrace trace;
    trace.dcs = 2;
    trace.add(10.0, {1.0, 0.5, 0.5, 1.0});
    trace.add(20.0, {1.0, 0.25, 0.25, 1.0});
    const TraceReplay replay(trace);

    net::NetworkSim sim(experiments::workerCluster(2),
                        experiments::quietSimConfig(), 1);
    replay.applyAt(sim, 0.0);
    EXPECT_NEAR(capturedMultipliers(sim)[1], 0.5, 1e-12);
    replay.applyAt(sim, 10.0);
    EXPECT_NEAR(capturedMultipliers(sim)[1], 0.25, 1e-12);
    EXPECT_DOUBLE_EQ(replay.capFactorAt(0, 1, 10.0), 0.5);
    replay.applyAt(sim, 9.0); // strictly inside the first interval
    EXPECT_NEAR(capturedMultipliers(sim)[1], 0.5, 1e-12);
    replay.applyAt(sim, 50.0); // past the end: last row held
    EXPECT_NEAR(capturedMultipliers(sim)[1], 0.25, 1e-12);
}

TEST(ScenarioTrace, SingleRowLegacyTraceHoldsEverywhere)
{
    // A one-sample capacity-only dataset (the legacy layout) must
    // replay as a constant medium at every query time, including
    // t = 0 and far past the lone timestamp.
    ml::Dataset legacy(1, 4);
    legacy.add({5.0}, std::vector<double>{1.0, 0.6, 0.6, 1.0});
    const auto trace = BwTrace::fromDataset(legacy);

    EXPECT_EQ(trace.dcs, 2u);
    ASSERT_EQ(trace.size(), 1u);
    EXPECT_TRUE(trace.bursts.empty());

    const TraceReplay replay(trace);
    for (double t : {0.0, 5.0, 5.1, 1.0e6})
        EXPECT_DOUBLE_EQ(replay.capFactorAt(0, 1, t), 0.6)
            << "t = " << t;
    EXPECT_TRUE(replay.burstsIn(-1.0, 1.0e6).empty());

    net::NetworkSim sim(experiments::workerCluster(2),
                        experiments::quietSimConfig(), 1);
    replay.applyAt(sim, 0.0);
    EXPECT_NEAR(capturedMultipliers(sim)[1], 0.6, 1e-12);
    replay.applyAt(sim, 100.0);
    EXPECT_NEAR(capturedMultipliers(sim)[1], 0.6, 1e-12);
}

// ---- engine integration -----------------------------------------------------

namespace {

gda::QueryResult
runUnderDynamics(const scenario::Dynamics *dynamics,
                 core::Wanify *wanify, std::uint64_t seed)
{
    const auto topo = experiments::workerCluster(4, 2);
    const auto job = workloads::teraSort(8.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadUniform(job.inputBytes);
    sched::LocalityScheduler locality;

    gda::Engine engine(topo, experiments::defaultSimConfig(), seed);
    gda::RunOptions opts;
    opts.schedulerBw = Matrix<Mbps>::square(4, 500.0);
    opts.wanify = wanify;
    opts.dynamics = dynamics;
    opts.adaptOnDrift = true;
    if (wanify == nullptr)
        opts.staticConnections = Matrix<int>::square(4, 2);
    return engine.run(job, hdfs.distribution(), locality, opts);
}

core::WanifyConfig
scenarioWanifyConfig()
{
    core::WanifyConfig cfg;
    // 4 DCs: a mesh is 12 pairs; one DC's row+col is 6/12 = 50%.
    cfg.drift.windowSize = 24;
    cfg.drift.minObservations = 12;
    cfg.drift.retrainFraction = 0.2;
    return cfg;
}

} // namespace

TEST(EngineScenario, DriftRetrainFiresEndToEnd)
{
    // A long all-pairs outage beginning shortly after the job starts
    // guarantees overlap with the shuffle no matter how stages land.
    ScenarioSpec spec;
    spec.name = "test-outage";
    ScenarioEvent ev;
    ev.kind = EventKind::Outage;
    ev.start = 10.0;
    ev.duration = 3000.0;
    ev.residual = 0.3;
    spec.events.push_back(ev);
    const ScenarioTimeline timeline(spec, 4, 99);

    core::Wanify wanify(scenarioWanifyConfig());
    wanify.setPredictor(experiments::sharedPredictor());

    const auto result =
        runUnderDynamics(&timeline, &wanify, 2024);
    EXPECT_GT(result.driftObservations, 0u);
    EXPECT_GE(result.retrainTriggers, 1u);
    EXPECT_GT(result.driftErrorFraction, 0.0);
    EXPECT_GT(result.latency, 0.0);
}

TEST(EngineScenario, SteadyConditionsRaiseNoRetrains)
{
    core::Wanify wanify(scenarioWanifyConfig());
    wanify.setPredictor(experiments::sharedPredictor());
    const auto result = runUnderDynamics(nullptr, &wanify, 2024);
    EXPECT_GT(result.driftObservations, 0u);
    EXPECT_EQ(result.retrainTriggers, 0u);
    EXPECT_DOUBLE_EQ(result.driftErrorFraction, 0.0);
}

TEST(EngineScenario, OutageSlowsTheJobDown)
{
    ScenarioSpec spec;
    spec.name = "test-outage";
    ScenarioEvent ev;
    ev.kind = EventKind::Outage;
    ev.start = 5.0;
    ev.duration = 3000.0;
    ev.residual = 0.01;
    spec.events.push_back(ev);
    const ScenarioTimeline timeline(spec, 4, 1);

    const auto clean = runUnderDynamics(nullptr, nullptr, 777);
    const auto outage = runUnderDynamics(&timeline, nullptr, 777);
    EXPECT_GT(outage.latency, 1.3 * clean.latency);
}

TEST(EngineScenario, DeterministicWithDynamics)
{
    const auto spec = libraryScenario("cascading");
    const ScenarioTimeline timeline(spec, 4, 11);
    const auto a = runUnderDynamics(&timeline, nullptr, 555);
    const auto b = runUnderDynamics(&timeline, nullptr, 555);
    EXPECT_DOUBLE_EQ(a.latency, b.latency);
    EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
}

namespace {

/** Skewed TeraSort under Tetrium with forecast planning on. */
gda::QueryResult
runForecastRun(const scenario::Dynamics *dynamics,
               core::Wanify *wanify, bool replanOnRetrain,
               std::uint64_t seed)
{
    const auto topo = experiments::workerCluster(4, 2);
    const auto job = workloads::teraSort(8.0);
    storage::HdfsStore hdfs(topo);
    hdfs.loadSkewed(job.inputBytes, {0.55, 0.25, 0.15, 0.05});
    sched::TetriumScheduler tetrium;

    gda::Engine engine(topo, experiments::defaultSimConfig(), seed);
    gda::RunOptions opts;
    opts.schedulerBw = Matrix<Mbps>::square(4, 500.0);
    opts.wanify = wanify;
    opts.dynamics = dynamics;
    opts.adaptOnDrift = true;
    opts.forecast.enabled = true;
    opts.forecast.horizon = 120.0;
    opts.forecast.step = 5.0;
    opts.replanOnRetrain = replanOnRetrain;
    return engine.run(job, hdfs.distribution(), tetrium, opts);
}

} // namespace

TEST(EngineScenario, ForecastReplanOnRetrainFiresAndIsDeterministic)
{
    // Same long outage as DriftRetrainFiresEndToEnd, but with
    // forecast planning + incremental re-plan on the retrain path:
    // the retrain must actually fire, the re-placed run must finish
    // every stage, and the whole pipeline (forecast build, warm
    // start, transfer stop/restart) must stay bit-deterministic.
    ScenarioSpec spec;
    spec.name = "test-outage";
    ScenarioEvent ev;
    ev.kind = EventKind::Outage;
    ev.start = 10.0;
    ev.duration = 3000.0;
    ev.residual = 0.3;
    spec.events.push_back(ev);
    const ScenarioTimeline timeline(spec, 4, 99);

    core::Wanify wanify(scenarioWanifyConfig());
    wanify.setPredictor(experiments::sharedPredictor());

    const auto a = runForecastRun(&timeline, &wanify, true, 2024);
    EXPECT_GE(a.retrainsApplied, 1u);
    EXPECT_GT(a.latency, 0.0);
    ASSERT_EQ(a.stages.size(), 2u);
    for (const auto &stage : a.stages) {
        EXPECT_GE(stage.end, stage.transferEnd);
        EXPECT_GE(stage.wanBytes, 0.0);
    }

    const auto b = runForecastRun(&timeline, &wanify, true, 2024);
    EXPECT_DOUBLE_EQ(a.latency, b.latency);
    EXPECT_DOUBLE_EQ(a.cost.total(), b.cost.total());
    EXPECT_EQ(a.retrainsApplied, b.retrainsApplied);

    // Without dynamics the forecast falls back to the gauge trend
    // (deployed mode) and the run must still complete cleanly.
    const auto trendOnly =
        runForecastRun(nullptr, &wanify, true, 2024);
    EXPECT_GT(trendOnly.latency, 0.0);
    const auto trendAgain =
        runForecastRun(nullptr, &wanify, true, 2024);
    EXPECT_DOUBLE_EQ(trendOnly.latency, trendAgain.latency);
}

TEST(EngineScenario, RejectsMismatchedClusterSize)
{
    const ScenarioTimeline timeline(libraryScenario("steady"), 8, 1);
    EXPECT_THROW(runUnderDynamics(&timeline, nullptr, 1),
                 FatalError);
}

// ---- runner aggregation -----------------------------------------------------

TEST(RunnerScenario, AggregateCarriesDriftStatsAndIsParallelSafe)
{
    core::Wanify wanify(scenarioWanifyConfig());
    wanify.setPredictor(experiments::sharedPredictor());

    // A long outage overlapping the whole run so every trial drifts.
    ScenarioSpec longOutage;
    longOutage.name = "long-outage";
    ScenarioEvent ev;
    ev.kind = EventKind::Outage;
    ev.start = 10.0;
    ev.duration = 3000.0;
    ev.residual = 0.3;
    longOutage.events.push_back(ev);
    const ScenarioTimeline longTimeline(longOutage, 4, 3);

    auto fn = [&](std::uint64_t seed) {
        return runUnderDynamics(&longTimeline, &wanify, seed);
    };
    const auto seq = experiments::runTrials(
        fn, 3, 42, experiments::Execution::Sequential);
    const auto par = experiments::runTrials(
        fn, 3, 42, experiments::Execution::Parallel);

    EXPECT_GT(seq.meanRetrainTriggers, 0.0);
    EXPECT_GT(seq.totalRetrainTriggers, 0u);
    EXPECT_GT(seq.meanDriftErrorFraction, 0.0);
    EXPECT_DOUBLE_EQ(seq.meanLatency, par.meanLatency);
    EXPECT_DOUBLE_EQ(seq.meanRetrainTriggers,
                     par.meanRetrainTriggers);
}

TEST(ScenarioTrace, ReplayMatchesScenarioAt128Dcs)
{
    // Record-then-replay equivalence at big-mesh scale: a 128-DC
    // drive (16,256 mesh flows, OU noise on) replays to the recorded
    // effective multipliers within one floating-point rounding, and
    // the replayed medium is closed under replay (bit-exact).
    const auto topo = experiments::workerCluster(128, 1);
    DriveConfig cfg;
    cfg.seed = 11;
    cfg.epoch = 5.0;
    cfg.horizon = 20.0;
    const auto live =
        driveScenario(libraryScenario("dc-outage"), topo, cfg);
    ASSERT_EQ(live.trace.dcs, 128u);
    ASSERT_GE(live.trace.size(), 4u);

    const auto replayed = driveReplay(live.trace, topo, cfg);
    ASSERT_EQ(replayed.trace.size(), live.trace.size());
    double maxDiff = 0.0;
    for (std::size_t k = 0; k < live.trace.size(); ++k) {
        ASSERT_EQ(replayed.trace.rows[k].size(),
                  live.trace.rows[k].size());
        for (std::size_t p = 0; p < live.trace.rows[k].size(); ++p)
            maxDiff = std::max(
                maxDiff, std::abs(replayed.trace.rows[k][p] -
                                  live.trace.rows[k][p]));
    }
    EXPECT_LT(maxDiff, 1e-9);

    const auto again = driveReplay(replayed.trace, topo, cfg);
    EXPECT_TRUE(again.trace.identical(replayed.trace));
    EXPECT_EQ(again.trace.hash(), replayed.trace.hash());
}
