/**
 * @file
 * Tests for the forecast subsystem: BwForecast segment integration
 * and boundary semantics, the GaugeTrend deployed-mode extrapolator,
 * the scenario forecast source's two anchors, forecast-aware stage
 * time estimation (including the dead-pair floor regression the old
 * 1 Mbps clamp hid), and fraction-search warm starts.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/units.hh"
#include "core/forecast.hh"
#include "experiments/testbed.hh"
#include "gda/scheduler.hh"
#include "sched/fraction_search.hh"
#include "sched/tetrium.hh"
#include "scenario/forecast.hh"
#include "scenario/scenario.hh"

using namespace wanify;

namespace {

/** Forecast with one segment per (end, uniform off-diag bw) pair. */
core::BwForecast
uniformForecast(std::size_t n,
                const std::vector<std::pair<Seconds, Mbps>> &segs)
{
    core::BwForecast fc;
    for (const auto &[end, bw] : segs)
        fc.addSegment(end, Matrix<Mbps>::square(n, bw));
    return fc;
}

gda::StageContext
contextFor(const net::Topology &topo, const Matrix<Mbps> &bw,
           const gda::StageSpec &stage, std::vector<Bytes> input,
           std::size_t stageIndex)
{
    gda::StageContext ctx;
    ctx.topo = &topo;
    ctx.bw = &bw;
    ctx.inputByDc = std::move(input);
    ctx.stage = &stage;
    ctx.stageIndex = stageIndex;
    ctx.computeRate.assign(topo.dcCount(), 0.0);
    ctx.egressPrice.assign(topo.dcCount(), 0.0);
    for (net::DcId d = 0; d < topo.dcCount(); ++d) {
        for (net::VmId v : topo.dc(d).vms)
            ctx.computeRate[d] += topo.vm(v).type.computeRate;
        ctx.egressPrice[d] = topo.dc(d).region.egressPerGb;
    }
    return ctx;
}

} // namespace

// ---- BwForecast -------------------------------------------------------------

TEST(BwForecast, SingleSegmentMatchesSnapshotDivision)
{
    const auto fc = uniformForecast(2, {{100.0, 400.0}});
    const Bytes bytes = 1.0e9;
    EXPECT_NEAR(fc.transferTime(0, 1, bytes, 1.0, 0.0),
                units::transferTime(bytes, 400.0), 1e-9);
    EXPECT_NEAR(fc.transferTime(0, 1, bytes, 0.5, 0.0),
                units::transferTime(bytes, 200.0), 1e-9);
    EXPECT_DOUBLE_EQ(fc.transferTime(0, 1, 0.0, 1.0, 0.0), 0.0);
}

TEST(BwForecast, IntegratesAcrossSegments)
{
    // 100 Mbps until t = 10, then 50 Mbps. 2.5e8 bytes starting at
    // t = 0: the first 1.25e8 drain in exactly 10 s at 100 Mbps, the
    // rest take 20 s at 50 Mbps.
    const auto fc =
        uniformForecast(2, {{10.0, 100.0}, {20.0, 50.0}});
    EXPECT_NEAR(fc.transferTime(0, 1, 2.5e8, 1.0, 0.0), 30.0, 1e-6);
    // Starting mid-segment: 5 s left at 100 Mbps moves 6.25e7.
    EXPECT_NEAR(fc.transferTime(0, 1, 1.25e8, 1.0, 5.0),
                5.0 + 10.0, 1e-6);
}

TEST(BwForecast, SegmentEndBoundaryBelongsToNextSegment)
{
    // Segments hold over (prev, end]: a transfer *starting* exactly
    // at a segment end gets zero window there and runs at the next
    // segment's rate.
    const auto fc =
        uniformForecast(2, {{10.0, 100.0}, {20.0, 50.0}});
    EXPECT_NEAR(fc.transferTime(0, 1, 1.25e8, 1.0, 10.0), 20.0,
                1e-6);
    // bwAt uses the same closed-right convention.
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 10.0), 100.0);
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 10.0001), 50.0);
}

TEST(BwForecast, LastSegmentIsHeldBeyondHorizon)
{
    const auto fc =
        uniformForecast(2, {{10.0, 100.0}, {20.0, 50.0}});
    EXPECT_DOUBLE_EQ(fc.horizonEnd(), 20.0);
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 1.0e6), 50.0);
    // A transfer starting past the horizon sees a flat 50 Mbps.
    EXPECT_NEAR(fc.transferTime(0, 1, 1.25e8, 1.0, 500.0), 20.0,
                1e-6);
}

TEST(BwForecast, DeadPairFloorIsFiniteAndBytesProportional)
{
    // An outage pair must price as astronomically expensive, not as
    // an infinity plateau: the search needs a gradient, and doubling
    // the bytes must double the pain.
    core::BwForecast fc;
    auto bw = Matrix<Mbps>::square(2, 400.0);
    bw.at(0, 1) = 0.0;
    fc.addSegment(1.0e9, bw);
    const double t1 = fc.transferTime(0, 1, 1.0e6, 1.0, 0.0);
    const double t2 = fc.transferTime(0, 1, 2.0e6, 1.0, 0.0);
    EXPECT_TRUE(std::isfinite(t1));
    EXPECT_NEAR(
        t1,
        units::transferTime(1.0e6, core::BwForecast::kMinFeasibleMbps),
        1e-3);
    EXPECT_NEAR(t2, 2.0 * t1, 1e-3);
    // The floor also guards tiny shares on live pairs.
    EXPECT_TRUE(std::isfinite(fc.transferTime(1, 0, 1.0e6, 0.0, 0.0)));
}

TEST(BwForecast, MeshMeanSkipsDiagonal)
{
    core::BwForecast fc;
    auto bw = Matrix<Mbps>::square(2, 0.0);
    bw.at(0, 0) = 1.0e6; // diagonal junk must not leak in
    bw.at(1, 1) = 1.0e6;
    bw.at(0, 1) = 100.0;
    bw.at(1, 0) = 300.0;
    fc.addSegment(60.0, bw);
    EXPECT_DOUBLE_EQ(fc.meshMeanAt(30.0), 200.0);
}

// ---- GaugeTrend (deployed-mode source) --------------------------------------

TEST(GaugeTrend, FewerThanTwoPointsForecastsFlat)
{
    core::GaugeTrend trend;
    EXPECT_TRUE(trend.forecast(0.0, 60.0, 10.0).empty());

    trend.record(0.0, Matrix<Mbps>::square(2, 250.0));
    EXPECT_FALSE(trend.ready());
    const auto fc = trend.forecast(0.0, 60.0, 10.0);
    ASSERT_FALSE(fc.empty());
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 5.0), 250.0);
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 60.0), 250.0);
}

TEST(GaugeTrend, LinearDeclineExtrapolatesAndClampsAtZero)
{
    core::GaugeTrend trend;
    trend.record(0.0, Matrix<Mbps>::square(2, 100.0));
    trend.record(10.0, Matrix<Mbps>::square(2, 80.0));
    ASSERT_TRUE(trend.ready());

    // Slope -2 Mbps/s through both points, sampled at segment ends.
    const auto fc = trend.forecast(10.0, 40.0, 10.0);
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 15.0), 60.0); // t = 20
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 25.0), 40.0); // t = 30
    // t = 50 would extrapolate to 0; never negative.
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 50.0), 0.0);
    EXPECT_GE(fc.bwAt(0, 1, 1.0e6), 0.0);
}

TEST(GaugeTrend, KeepsOnlyTheMostRecentPoints)
{
    core::GaugeTrend trend(2);
    trend.record(0.0, Matrix<Mbps>::square(2, 500.0)); // evicted
    trend.record(10.0, Matrix<Mbps>::square(2, 100.0));
    trend.record(20.0, Matrix<Mbps>::square(2, 90.0));
    EXPECT_EQ(trend.size(), 2u);
    // Fit over the surviving points only: slope -1, not the steep
    // drop the evicted point would imply.
    const auto fc = trend.forecast(20.0, 10.0, 10.0);
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 25.0), 80.0); // t = 30
}

// ---- scenario forecast source -----------------------------------------------

namespace {

scenario::ScenarioTimeline
maintenanceTimeline(double magnitude = 0.5)
{
    scenario::ScenarioSpec spec;
    spec.name = "t";
    scenario::ScenarioEvent ev;
    ev.kind = scenario::EventKind::Maintenance;
    ev.src = 0;
    ev.dst = 1;
    ev.start = 100.0;
    ev.duration = 50.0;
    ev.magnitude = magnitude;
    spec.events.push_back(ev);
    return scenario::ScenarioTimeline(spec, 2, 1);
}

} // namespace

TEST(ScenarioForecast, NominalAnchorScalesBelievedByFutureFactor)
{
    const auto timeline = maintenanceTimeline();
    const auto believed = Matrix<Mbps>::square(2, 400.0);
    core::ForecastConfig cfg;
    cfg.horizon = 150.0;
    cfg.step = 10.0;
    cfg.anchor = core::ForecastConfig::Anchor::Nominal;

    const auto fc = scenario::forecastFromDynamics(
        timeline, believed, 0.0, cfg);
    ASSERT_EQ(fc.segments(), 15u);
    // Before the window: nominal capacity.
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 85.0), 400.0);
    // Inside the window the pair halves; the selector spares (1, 0).
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 105.0), 200.0);
    EXPECT_DOUBLE_EQ(fc.bwAt(1, 0, 105.0), 400.0);
}

TEST(ScenarioForecast, CurrentAnchorRebasesToThePlanTimeFactor)
{
    const auto timeline = maintenanceTimeline();
    // Gauged mid-window: the belief already reflects the 0.5 factor.
    const auto believed = Matrix<Mbps>::square(2, 200.0);
    core::ForecastConfig cfg;
    cfg.horizon = 60.0;
    cfg.step = 10.0;
    cfg.anchor = core::ForecastConfig::Anchor::Current;

    const auto fc = scenario::forecastFromDynamics(
        timeline, believed, 120.0, cfg);
    // Still inside the window: factor ratio 0.5 / 0.5 = 1.
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 125.0), 200.0);
    // After recovery the forecast doubles back to nominal.
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 175.0), 400.0);
}

TEST(ScenarioForecast, CurrentAnchorFloorsTheNowFactor)
{
    // Gauged mid-outage with a residual below the anchor floor: the
    // recovery ratio must be capped at 1 / kMinAnchorFactor, not
    // explode by 1 / residual.
    scenario::ScenarioSpec spec;
    spec.name = "t";
    scenario::ScenarioEvent ev;
    ev.kind = scenario::EventKind::Outage;
    ev.src = 0;
    ev.dst = 1;
    ev.start = 0.0;
    ev.duration = 50.0;
    ev.residual = 1.0e-4;
    spec.events.push_back(ev);
    const scenario::ScenarioTimeline timeline(spec, 2, 1);

    const auto believed = Matrix<Mbps>::square(2, 1.0);
    core::ForecastConfig cfg;
    cfg.horizon = 100.0;
    cfg.step = 10.0;
    cfg.anchor = core::ForecastConfig::Anchor::Current;
    const auto fc = scenario::forecastFromDynamics(
        timeline, believed, 25.0, cfg);
    EXPECT_DOUBLE_EQ(fc.bwAt(0, 1, 95.0),
                     1.0 / scenario::kMinAnchorFactor);
}

// ---- forecast-aware stage time + the dead-pair floor regression -------------

TEST(ForecastPlanning, EstimatorChargesTheUpcomingWindow)
{
    // Snapshot sees 400 Mbps everywhere; the forecast knows pair
    // (0, 1) collapses to 4 Mbps after 5 s. An assignment shuffling
    // across that pair must estimate much slower under the forecast.
    const auto topo = experiments::workerCluster(2, 2);
    const Matrix<Mbps> bw = Matrix<Mbps>::square(2, 400.0);
    const gda::StageSpec stage{"s", 1.0, 0.05, true};
    auto ctx = contextFor(topo, bw, stage, {4.0e9, 0.0}, 1);

    Matrix<Bytes> a = Matrix<Bytes>::square(2, 0.0);
    a.at(0, 0) = 2.0e9;
    a.at(0, 1) = 2.0e9;
    const Seconds snapshotTime = gda::estimateStageTime(ctx, a);

    core::BwForecast fc;
    fc.addSegment(5.0, Matrix<Mbps>::square(2, 400.0));
    auto collapsed = Matrix<Mbps>::square(2, 400.0);
    collapsed.at(0, 1) = 4.0;
    fc.addSegment(1.0e6, collapsed);
    ctx.forecast = &fc;
    const Seconds forecastTime = gda::estimateStageTime(ctx, a);

    EXPECT_GT(forecastTime, 5.0 * snapshotTime);

    // planTime offsets the integration: planning from t = 1e6 (the
    // collapse priced from the very first byte) is slower still.
    ctx.planTime = 1.0e6;
    EXPECT_GT(gda::estimateStageTime(ctx, a), forecastTime);
}

TEST(ForecastPlanning, DeadPairPricesWorseThanAnyThrottledLivePair)
{
    // Regression for the silent 1 Mbps floor: under
    // max(1.0, bw * share) a dead pair (bw = 0) and a live pair
    // throttled to a tiny share (400 * 0.001 = 0.4 Mbps) both clamped
    // to 1 Mbps — identical cost, no gradient, and the search could
    // pick the dead pair. The epsilon floor keeps the ordering.
    const auto topo = experiments::workerCluster(3, 2);
    auto bw = Matrix<Mbps>::square(3, 400.0);
    bw.at(0, 1) = 0.0;
    const gda::StageSpec stage{"s", 1.0, 0.05, true};
    auto ctx = contextFor(topo, bw, stage, {6.0e9, 0.0, 0.0}, 1);
    ctx.wanShare = 0.001;

    Matrix<Bytes> dead = Matrix<Bytes>::square(3, 0.0);
    dead.at(0, 0) = 5.0e9;
    dead.at(0, 1) = 1.0e9;
    Matrix<Bytes> live = Matrix<Bytes>::square(3, 0.0);
    live.at(0, 0) = 5.0e9;
    live.at(0, 2) = 1.0e9;

    const Seconds deadTime = gda::estimateStageTime(ctx, dead);
    const Seconds liveTime = gda::estimateStageTime(ctx, live);
    EXPECT_TRUE(std::isfinite(deadTime));
    EXPECT_GT(deadTime, 100.0 * liveTime);

    // And the fix routes around the outage: Tetrium drains the dead
    // pair down to (at most) the search's step granularity, where the
    // old floor saw no gradient at all.
    sched::TetriumScheduler tetrium;
    const auto a = tetrium.placeStage(ctx);
    EXPECT_LT(a.at(0, 1), 0.02 * 6.0e9 + 1.0);
    Bytes rowSum = 0.0;
    for (std::size_t j = 0; j < 3; ++j)
        rowSum += a.at(0, j);
    EXPECT_NEAR(rowSum, 6.0e9, 1.0);
}

// ---- warm starts ------------------------------------------------------------

TEST(WarmStart, AppliesOnlySizeMatchingRememberedFractions)
{
    const auto topo = experiments::workerCluster(3, 2);
    const Matrix<Mbps> bw = Matrix<Mbps>::square(3, 400.0);
    const gda::StageSpec stage{"s", 1.0, 0.05, true};
    auto ctx = contextFor(topo, bw, stage, {3.0e9, 0.0, 0.0}, 1);

    std::vector<double> seed = {1.0, 0.0, 0.0};
    // No memory attached: nothing to apply.
    EXPECT_FALSE(sched::applyWarmStart(ctx, seed));

    gda::PlanMemory mem;
    mem.fractionsByStage[1] = {0.2, 0.3, 0.5};
    mem.fractionsByStage[2] = {1.0, 0.0}; // wrong cluster size
    ctx.memory = &mem;
    EXPECT_TRUE(sched::applyWarmStart(ctx, seed));
    EXPECT_DOUBLE_EQ(seed[2], 0.5);

    ctx.stageIndex = 2;
    std::vector<double> other = {1.0, 0.0, 0.0};
    EXPECT_FALSE(sched::applyWarmStart(ctx, other));
    EXPECT_DOUBLE_EQ(other[0], 1.0);
}

TEST(WarmStart, SecondSearchFromMemoryConvergesInFewerIterations)
{
    // A network-dominated two-DC stage with all input at DC 0: the
    // compute-proportional cold seed (half the work shipped to DC 1)
    // is far from the optimum, and with a single WAN destination
    // every 2% move strictly lowers the bottleneck, so the cold
    // search walks a long way down the simplex. Re-planning the same
    // stage with the remembered fractions must start at the optimum
    // and settle (near-)immediately.
    const auto topo = experiments::workerCluster(2, 2);
    const Matrix<Mbps> bw = Matrix<Mbps>::square(2, 300.0);
    const gda::StageSpec stage{"s", 1.0, 0.01, true};
    auto ctx = contextFor(topo, bw, stage, {8.0e9, 0.0}, 1);
    gda::PlanMemory mem;
    ctx.memory = &mem;

    sched::TetriumScheduler tetrium;
    const auto cold = tetrium.placeStage(ctx);
    const std::size_t coldIterations = mem.lastIterations;
    ASSERT_GT(coldIterations, 0u);
    ASSERT_EQ(mem.fractionsByStage.count(1), 1u);

    const auto warm = tetrium.placeStage(ctx);
    EXPECT_LT(mem.lastIterations, coldIterations);
    for (std::size_t i = 0; i < 2; ++i)
        for (std::size_t j = 0; j < 2; ++j)
            EXPECT_NEAR(warm.at(i, j), cold.at(i, j), 1.0);
}
